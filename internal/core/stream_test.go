package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/kinetic/wire"
	"repro/internal/store"
)

// streamPayload builds a deterministic pseudo-random payload.
func streamPayload(n int) []byte {
	out := make([]byte, n)
	rand.New(rand.NewSource(int64(n))).Read(out)
	return out
}

// readStream drains a session streaming read into memory.
func readStream(t *testing.T, s *Session, key string, opts GetOptions) ([]byte, *store.Meta) {
	t.Helper()
	meta, send, err := s.GetStream(context.Background(), key, opts)
	if err != nil {
		t.Fatalf("GetStream(%q): %v", key, err)
	}
	var buf bytes.Buffer
	if err := send(&buf); err != nil {
		t.Fatalf("stream %q: %v", key, err)
	}
	return buf.Bytes(), meta
}

func TestStreamLargeObjectRoundTrip(t *testing.T) {
	h := newHarness(t, 3, func(c *Config) { c.Replicas = 2 })
	s := h.ctl.Session("w")
	ctx := context.Background()

	// 3.5 chunks worth of payload: exercises full and partial chunks.
	payload := streamPayload(3*streamChunkSize + streamChunkSize/2)
	res := s.PutStream(ctx, "big", bytes.NewReader(payload), PutOptions{})
	if res.Err != nil {
		t.Fatalf("PutStream: %v", res.Err)
	}
	if res.Version != 0 {
		t.Fatalf("version %d, want 0", res.Version)
	}

	got, meta := readStream(t, s, "big", GetOptions{})
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %d bytes vs %d", len(got), len(payload))
	}
	if meta.Chunks != 4 || meta.Size != int64(len(payload)) {
		t.Errorf("meta: chunks=%d size=%d", meta.Chunks, meta.Size)
	}
	// The buffered read path refuses (it cannot hold the object) with
	// the dedicated streamed-object error rather than serving partial
	// data or claiming the *request* was too large.
	if _, _, err := s.Get(ctx, "big", GetOptions{}); !errors.Is(err, ErrStreamedObject) {
		t.Errorf("buffered get of chunked object: %v", err)
	}
	// Verification recomputes the whole-object hash across chunks.
	if _, err := s.Verify(ctx, "big", 0); err != nil {
		t.Errorf("verify streamed object: %v", err)
	}
	// The drive-cost model was charged per chunk; cheap sanity only.
	if st := h.ctl.stats.Snapshot(); st.Streams == 0 {
		t.Error("Streams counter not incremented")
	}
}

func TestStreamSmallObjectLandsInline(t *testing.T) {
	h := newHarness(t, 1, nil)
	s := h.ctl.Session("w")
	ctx := context.Background()

	payload := streamPayload(10 << 10)
	res := s.PutStream(ctx, "small", bytes.NewReader(payload), PutOptions{})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// Inline: the buffered v1 read path serves it unchanged.
	val, meta, err := s.Get(ctx, "small", GetOptions{})
	if err != nil || !bytes.Equal(val, payload) {
		t.Fatalf("buffered get: %v", err)
	}
	if meta.Chunks != 0 {
		t.Errorf("small object stored chunked: %d", meta.Chunks)
	}
	// And the streaming path serves the same bytes.
	got, _ := readStream(t, s, "small", GetOptions{})
	if !bytes.Equal(got, payload) {
		t.Error("streaming read of inline object diverges")
	}
}

func TestStreamVersionsHistoryAndDelete(t *testing.T) {
	h := newHarness(t, 2, func(c *Config) { c.Replicas = 2 })
	s := h.ctl.Session("w")
	ctx := context.Background()

	v0 := streamPayload(2*streamChunkSize + 17)
	v1 := streamPayload(streamChunkSize + 1)
	if res := s.PutStream(ctx, "hist", bytes.NewReader(v0), PutOptions{}); res.Err != nil {
		t.Fatal(res.Err)
	}
	if res := s.PutStream(ctx, "hist", bytes.NewReader(v1), PutOptions{}); res.Err != nil {
		t.Fatal(res.Err)
	}
	vers, err := s.ListVersions(ctx, "hist", nil)
	if err != nil || len(vers) != 2 {
		t.Fatalf("versions: %v %v", vers, err)
	}
	// Historic streamed versions stay readable through their stubs.
	got, meta := readStream(t, s, "hist", GetOptions{Version: 0, HasVersion: true})
	if !bytes.Equal(got, v0) || meta.Version != 0 {
		t.Fatalf("historic version mismatch (%d bytes, v%d)", len(got), meta.Version)
	}
	got, _ = readStream(t, s, "hist", GetOptions{})
	if !bytes.Equal(got, v1) {
		t.Fatal("head version mismatch")
	}

	// Delete destroys every chunk record on every replica.
	ver, err := h.ctl.deleteObject(ctx, "w", "hist", DeleteOptions{})
	if err != nil || ver != 1 {
		t.Fatalf("delete: v=%d err=%v", ver, err)
	}
	for di := range h.ctl.drives {
		cstart, cend := store.ChunkKeyRange("hist")
		keys, err := h.ctl.rangeAll(ctx, h.ctl.drives[di].pick(), cstart, cend)
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != 0 {
			t.Errorf("drive %d retains %d chunk records after delete", di, len(keys))
		}
	}
	if _, _, err := s.GetStream(ctx, "hist", GetOptions{}); !errors.Is(err, ErrNotFound) {
		t.Errorf("get after delete: %v", err)
	}
}

func TestStreamCapRejectsAndSweeps(t *testing.T) {
	h := newHarness(t, 2, func(c *Config) {
		c.Replicas = 2
		c.MaxStreamBytes = 2 * streamChunkSize
	})
	s := h.ctl.Session("w")
	ctx := context.Background()

	res := s.PutStream(ctx, "capped", bytes.NewReader(streamPayload(3*streamChunkSize)), PutOptions{})
	if res.Err == nil || res.Err.Code != CodeTooLarge {
		t.Fatalf("over-cap stream: %+v", res)
	}
	// The rejected upload's chunks were swept; nothing was published.
	for di := range h.ctl.drives {
		cstart, cend := store.ChunkKeyRange("capped")
		keys, err := h.ctl.rangeAll(ctx, h.ctl.drives[di].pick(), cstart, cend)
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != 0 {
			t.Errorf("drive %d holds %d orphan chunks", di, len(keys))
		}
	}
	if _, _, err := s.Get(ctx, "capped", GetOptions{}); !errors.Is(err, ErrNotFound) {
		t.Errorf("rejected stream published an object: %v", err)
	}
}

func TestStreamRepairRestoresChunks(t *testing.T) {
	h := newHarness(t, 3, func(c *Config) { c.Replicas = 3 })
	s := h.ctl.Session("w")
	ctx := context.Background()

	payload := streamPayload(2*streamChunkSize + 99)
	if res := s.PutStream(ctx, "r", bytes.NewReader(payload), PutOptions{}); res.Err != nil {
		t.Fatal(res.Err)
	}
	// Lose one replica wholesale (simulated drive replacement).
	victim := store.Placement("r", 3, 3)[1]
	if err := eraseDrive(h, victim); err != nil {
		t.Fatal(err)
	}

	report, err := s.Repair(ctx, "r")
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	// Restored on the victim: 1 stub + 3 chunks + 1 meta.
	if report.Restored != 5 {
		t.Errorf("restored %d records, want 5", report.Restored)
	}
	// Clear caches and read through the repaired replica set.
	h.ctl.metaCache.Clear()
	h.ctl.objectCache.Clear()
	got, _ := readStream(t, s, "r", GetOptions{})
	if !bytes.Equal(got, payload) {
		t.Error("payload diverges after repair")
	}
	// Idempotent.
	if report, err := s.Repair(ctx, "r"); err != nil || report.Restored != 0 {
		t.Errorf("second repair: %+v %v", report, err)
	}
}

func TestStreamChunkTransplantDetected(t *testing.T) {
	h := newHarness(t, 1, nil)
	s := h.ctl.Session("w")
	ctx := context.Background()

	payload := streamPayload(2 * streamChunkSize)
	if res := s.PutStream(ctx, "swap", bytes.NewReader(payload), PutOptions{}); res.Err != nil {
		t.Fatal(res.Err)
	}
	// Swap the two chunk records on the drive: each is individually
	// authentic, but bound to the wrong position.
	cl := h.ctl.drives[0].pick()
	k0, k1 := store.ChunkKey("swap", 0, 0), store.ChunkKey("swap", 0, 1)
	b0, _, err := cl.Get(ctx, k0)
	if err != nil {
		t.Fatal(err)
	}
	b1, _, err := cl.Get(ctx, k1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Put(ctx, k0, b1, nil, []byte{9}, true); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put(ctx, k1, b0, nil, []byte{9}, true); err != nil {
		t.Fatal(err)
	}
	h.ctl.objectCache.Clear()

	_, send, err := s.GetStream(ctx, "swap", GetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := send(&bytes.Buffer{}); !errors.Is(err, store.ErrCorrupt) {
		t.Errorf("transplanted chunks served: %v", err)
	}
}

func TestStreamExactChunkBoundaryStaysInline(t *testing.T) {
	h := newHarness(t, 1, nil)
	s := h.ctl.Session("w")
	ctx := context.Background()

	// Exactly the inline limit: must land as a single inline record,
	// readable through the buffered path like any Put.
	payload := streamPayload(streamChunkSize)
	if res := s.PutStream(ctx, "edge", bytes.NewReader(payload), PutOptions{}); res.Err != nil {
		t.Fatal(res.Err)
	}
	val, meta, err := s.Get(ctx, "edge", GetOptions{})
	if err != nil || !bytes.Equal(val, payload) {
		t.Fatalf("buffered get of boundary object: %v", err)
	}
	if meta.Chunks != 0 {
		t.Fatalf("boundary object stored as %d chunks, want inline", meta.Chunks)
	}
	// One byte more must chunk.
	payload2 := streamPayload(streamChunkSize + 1)
	if res := s.PutStream(ctx, "edge", bytes.NewReader(payload2), PutOptions{}); res.Err != nil {
		t.Fatal(res.Err)
	}
	got, meta2 := readStream(t, s, "edge", GetOptions{})
	if !bytes.Equal(got, payload2) || meta2.Chunks != 2 {
		t.Fatalf("chunked round trip: %d bytes, %d chunks", len(got), meta2.Chunks)
	}
}

// hookReader fires a callback before its first Read — a probe for
// racing a mutation into the middle of a streamed upload.
type hookReader struct {
	r    io.Reader
	once sync.Once
	hook func()
}

func (h *hookReader) Read(p []byte) (int, error) {
	h.once.Do(h.hook)
	return h.r.Read(p)
}

func TestStreamLosesRaceToBufferedWriter(t *testing.T) {
	h := newHarness(t, 1, nil)
	s := h.ctl.Session("w")
	ctx := context.Background()

	if _, err := s.Put(ctx, "raced", []byte("orig"), PutOptions{}); err != nil {
		t.Fatal(err)
	}
	// The stream plans its version, uploads its first chunk, and then —
	// via the hook, while the upload is in flight and no stripe lock is
	// held — a buffered writer commits the same key. The stream's final
	// CAS commit must lose, sweep its chunks, and report the conflict.
	payload := streamPayload(2*streamChunkSize + 5)
	body := io.MultiReader(
		bytes.NewReader(payload[:streamChunkSize+1]),
		&hookReader{r: bytes.NewReader(payload[streamChunkSize+1:]), hook: func() {
			if _, err := s.Put(ctx, "raced", []byte("winner"), PutOptions{}); err != nil {
				t.Errorf("racing put: %v", err)
			}
		}},
	)
	res := s.PutStream(ctx, "raced", body, PutOptions{})
	if res.Err == nil || res.Err.Code != CodeVersionConflict {
		t.Fatalf("racing stream: %+v", res)
	}
	// The buffered winner's value survived, and no orphan chunks remain.
	val, meta, err := s.Get(ctx, "raced", GetOptions{})
	if err != nil || !bytes.Equal(val, []byte("winner")) || meta.Version != 1 {
		t.Fatalf("winner after race: %q v%d %v", val, meta.Version, err)
	}
	cstart, cend := store.ChunkKeyRange("raced")
	keys, err := h.ctl.rangeAll(ctx, h.ctl.drives[0].pick(), cstart, cend)
	if err != nil || len(keys) != 0 {
		t.Fatalf("orphan chunks after lost race: %d %v", len(keys), err)
	}
}

func TestStreamDetectsDeleteRecreateABA(t *testing.T) {
	h := newHarness(t, 1, nil)
	s := h.ctl.Session("w")
	ctx := context.Background()

	if _, err := s.Put(ctx, "aba", []byte("orig"), PutOptions{}); err != nil {
		t.Fatal(err)
	}
	// Mid-upload, the object is deleted (sweeping the stream's chunks)
	// and recreated at the same version number. The bare version CAS
	// would match the impostor; the commit-time probe must notice the
	// swept chunks and refuse to publish metadata over missing records.
	payload := streamPayload(2*streamChunkSize + 9)
	body := io.MultiReader(
		bytes.NewReader(payload[:streamChunkSize+1]),
		&hookReader{r: bytes.NewReader(payload[streamChunkSize+1:]), hook: func() {
			if err := s.Delete(ctx, "aba", DeleteOptions{}); err != nil {
				t.Errorf("racing delete: %v", err)
			}
			if _, err := s.Put(ctx, "aba", []byte("impostor"), PutOptions{}); err != nil {
				t.Errorf("racing recreate: %v", err)
			}
		}},
	)
	res := s.PutStream(ctx, "aba", body, PutOptions{})
	if res.Err == nil || res.Err.Code != CodeVersionConflict {
		t.Fatalf("ABA stream commit: %+v", res)
	}
	val, meta, err := s.Get(ctx, "aba", GetOptions{})
	if err != nil || !bytes.Equal(val, []byte("impostor")) || meta.Version != 0 {
		t.Fatalf("recreated object after ABA: %q v%d %v", val, meta.Version, err)
	}
	cstart, cend := store.ChunkKeyRange("aba")
	keys, err := h.ctl.rangeAll(ctx, h.ctl.drives[0].pick(), cstart, cend)
	if err != nil || len(keys) != 0 {
		t.Fatalf("orphan chunks after ABA: %d %v", len(keys), err)
	}
}

// eraseDrive wipes one harness drive via the admin erase command.
func eraseDrive(h *harness, di int) error {
	erase := &wire.Message{Type: wire.TErase, User: AdminIdentity}
	erase.Sign(h.ctl.adminKeyFor(h.drives[di].Name()))
	if resp := h.drives[di].Handle(erase); resp.Status != wire.StatusOK {
		return fmt.Errorf("erase drive %d: %v", di, resp.Status)
	}
	return nil
}
