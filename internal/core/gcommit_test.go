package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kinetic"
	"repro/internal/kinetic/kclient"
	"repro/internal/kinetic/wire"
	"repro/internal/store"
)

// slowHDD returns a media model whose positioning time makes the
// drive the bottleneck under a handful of concurrent writers without
// slowing the test down much.
func slowHDD() kinetic.MediaModel {
	return &kinetic.HDDMedia{Positioning: 2 * time.Millisecond, BytesPerSec: 150e6,
		WritePenalty: 100 * time.Microsecond, TimeScale: 1}
}

// TestGroupCommitMergesConcurrentWrites: under concurrent independent
// writers on a slow medium, the committer must ship fewer drive
// batches than logical writes — many clients sharing media waits —
// while every write still lands intact.
func TestGroupCommitMergesConcurrentWrites(t *testing.T) {
	h := newMediaHarness(t, 1, func(int) kinetic.MediaModel { return slowHDD() }, nil)
	ctx := context.Background()
	sess := h.ctl.Session("writer")

	const clients, rounds = 16, 8
	var wg sync.WaitGroup
	var failed atomic.Int64
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				key := fmt.Sprintf("merge/%d", w)
				if _, err := sess.Put(ctx, key, []byte(fmt.Sprintf("v%d", r)), PutOptions{}); err != nil {
					failed.Add(1)
					t.Errorf("put %s round %d: %v", key, r, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if failed.Load() > 0 {
		t.Fatalf("%d writers failed", failed.Load())
	}

	total := uint64(clients * rounds)
	batches := h.drives[0].Stats().Batches.Load()
	if batches >= total {
		t.Errorf("drive saw %d batches for %d writes; group commit merged nothing", batches, total)
	}
	st := h.ctl.Stats().Snapshot()
	if st.GroupedWrites == 0 {
		t.Errorf("GroupedWrites = 0; no write shared a merged batch")
	}
	t.Logf("writes=%d driveBatches=%d groupBatches=%d groupedWrites=%d",
		total, batches, st.GroupBatches, st.GroupedWrites)

	// Every writer's final value must be intact (no cross-group
	// contamination inside merged batches).
	for w := 0; w < clients; w++ {
		val, _, err := sess.Get(ctx, fmt.Sprintf("merge/%d", w), GetOptions{})
		if err != nil {
			t.Fatalf("readback merge/%d: %v", w, err)
		}
		if string(val) != fmt.Sprintf("v%d", rounds-1) {
			t.Errorf("merge/%d = %q, want %q", w, val, fmt.Sprintf("v%d", rounds-1))
		}
	}
}

// TestGroupCommitCASStorm is the write/write conflict contract at the
// drive: 32 concurrent groups CAS-updating one hot key yield exactly
// one winner per round and the losers see ErrVersionMismatch, while
// each round's unrelated keys — merged into the very same drive
// batches — commit untouched. This drives the committer directly
// (driveBatch), below the controller's stripe locks, which is the
// only place same-key groups can actually race.
func TestGroupCommitCASStorm(t *testing.T) {
	h := newMediaHarness(t, 1, nil, nil)
	ctx := context.Background()
	ver := func(v int64) []byte {
		if v < 0 {
			return nil
		}
		return encodeVer(v)
	}

	const stormers, rounds = 32, 6
	// Create the hot key at version 0.
	err := h.ctl.driveBatch(ctx, 0, []wire.BatchOp{
		{Op: wire.BatchPut, Key: []byte("hot"), Value: []byte("seed"), NewVersion: ver(0)},
	}, 4, wire.SyncWriteThrough, false)
	if err != nil {
		t.Fatalf("seed: %v", err)
	}

	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		var wins, losses, other atomic.Int64
		for s := 0; s < stormers; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				// The contended CAS group.
				casErr := h.ctl.driveBatch(ctx, 0, []wire.BatchOp{
					{Op: wire.BatchPut, Key: []byte("hot"),
						Value:     []byte(fmt.Sprintf("r%d-s%d", r, s)),
						DBVersion: ver(int64(r)), NewVersion: ver(int64(r + 1))},
				}, 8, wire.SyncWriteThrough, false)
				switch {
				case casErr == nil:
					wins.Add(1)
				case errors.Is(casErr, kclient.ErrVersionMismatch):
					losses.Add(1)
				default:
					other.Add(1)
					t.Errorf("round %d stormer %d: unexpected error %v", r, s, casErr)
				}
				// An unrelated key riding the same queue (and very
				// likely the same merged batches) must never share the
				// CAS group's fate.
				bys := []byte(fmt.Sprintf("ok-r%d-s%d", r, s))
				if err := h.ctl.driveBatch(ctx, 0, []wire.BatchOp{
					{Op: wire.BatchPut, Key: bys, Value: bys, Force: true, NewVersion: ver(1)},
				}, len(bys), wire.SyncWriteThrough, false); err != nil {
					t.Errorf("round %d stormer %d: unrelated key failed: %v", r, s, err)
				}
			}(s)
		}
		wg.Wait()
		if wins.Load() != 1 || losses.Load() != int64(stormers-1) {
			t.Fatalf("round %d: %d winners, %d losers, %d other; want 1/%d/0",
				r, wins.Load(), losses.Load(), other.Load(), stormers-1)
		}
	}

	// The hot key advanced exactly once per round.
	cl := h.ctl.drives[0].pick()
	_, gotVer, err := cl.Get(ctx, []byte("hot"))
	if err != nil {
		t.Fatalf("read hot: %v", err)
	}
	if want := encodeVer(rounds); string(gotVer) != string(want) {
		t.Fatalf("hot at version %x, want %x", gotVer, want)
	}
	// Every unrelated key from every round committed.
	for r := 0; r < rounds; r++ {
		for s := 0; s < stormers; s++ {
			k := fmt.Sprintf("ok-r%d-s%d", r, s)
			if _, _, err := cl.Get(ctx, []byte(k)); err != nil {
				t.Fatalf("unrelated key %s lost: %v", k, err)
			}
		}
	}
	if st := h.ctl.Stats().Snapshot(); st.GroupedWrites == 0 {
		t.Errorf("storm never shared a merged batch; the test exercised nothing")
	}
}

// TestGroupCommitOffReproducesPerOpBatches: Config.GroupCommit=false
// is the PR 1 write path — one atomic batch per logical write, no
// scheduler in the loop.
func TestGroupCommitOffReproducesPerOpBatches(t *testing.T) {
	h := newHarness(t, 1, func(cfg *Config) { cfg.GroupCommit = false })
	ctx := context.Background()
	sess := h.ctl.Session("writer")
	const puts = 10
	for i := 0; i < puts; i++ {
		if _, err := sess.Put(ctx, fmt.Sprintf("po/%d", i), []byte("v"), PutOptions{}); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if got := h.drives[0].Stats().Batches.Load(); got != puts {
		t.Errorf("drive saw %d batches for %d writes; per-op baseline must ship one each", got, puts)
	}
	st := h.ctl.Stats().Snapshot()
	if st.GroupBatches != 0 || st.GroupedWrites != 0 {
		t.Errorf("committer stats moved with GroupCommit=false: batches=%d grouped=%d",
			st.GroupBatches, st.GroupedWrites)
	}
	if h.drives[0].Stats().BatchGroups.Load() != 0 {
		t.Errorf("drive saw grouped batches with GroupCommit=false")
	}
}

// TestGroupCommitFreezeDrain: group commit composes with shard
// handoff. A FreezeRange during a loaded concurrent run must drain
// the in-flight groups and return (no wedged queue), writes to the
// frozen range must block and then — once the range is released —
// fail with ErrWrongShard, while writes to other ranges keep
// committing throughout.
func TestGroupCommitFreezeDrain(t *testing.T) {
	full := HashRange{Start: 0, End: store.ShardSpace}
	h := newMediaHarness(t, 1, func(int) kinetic.MediaModel { return slowHDD() }, func(cfg *Config) {
		cfg.Shard = &ShardInfo{ID: 0, Epoch: 1, Ranges: []HashRange{full}}
	})
	ctx := context.Background()
	sess := h.ctl.Session("writer")

	// Split the space in half and sort keys into the halves.
	frozen := HashRange{Start: 0, End: store.ShardSpace / 2}
	var frozenKeys, liveKeys []string
	for i := 0; len(frozenKeys) < 4 || len(liveKeys) < 4; i++ {
		k := fmt.Sprintf("fz/%d", i)
		if frozen.Contains(store.ShardHash(k)) {
			frozenKeys = append(frozenKeys, k)
		} else {
			liveKeys = append(liveKeys, k)
		}
	}

	// Background load on both halves.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var liveOK atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := liveKeys[(w+i)%4]
				if _, err := sess.Put(ctx, k, []byte("live"), PutOptions{}); err == nil {
					liveOK.Add(1)
				}
				k = frozenKeys[(w+i)%4]
				wctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
				_, _ = sess.Put(wctx, k, []byte("cold"), PutOptions{})
				cancel()
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond) // let the load build up

	// The drain: FreezeRange must return despite the loaded committer
	// queue. Guard with a timeout so a deadlock fails fast.
	frozeCh := make(chan error, 1)
	go func() { frozeCh <- h.ctl.FreezeRange(frozen) }()
	select {
	case err := <-frozeCh:
		if err != nil {
			t.Fatalf("freeze: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("FreezeRange deadlocked against the group-commit queue")
	}

	// While frozen: the other half keeps committing.
	before := liveOK.Load()
	deadline := time.Now().Add(2 * time.Second)
	for liveOK.Load() == before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if liveOK.Load() == before {
		t.Fatal("no live-range write committed while the other range was frozen")
	}
	// And frozen-range writes block rather than fail.
	wctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	_, err := sess.Put(wctx, frozenKeys[0], []byte("blocked"), PutOptions{})
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("frozen-range write: %v, want blocked (deadline exceeded)", err)
	}

	// Release the range (handoff completes elsewhere): blocked and new
	// writers must wake into the retriable redirect.
	if err := h.ctl.ReleaseRange(ctx, 2, frozen, &Manifest{Range: frozen}); err != nil {
		t.Fatalf("release: %v", err)
	}
	if _, err := sess.Put(ctx, frozenKeys[0], []byte("gone"), PutOptions{}); !errors.Is(err, ErrWrongShard) {
		t.Fatalf("released-range write: %v, want ErrWrongShard", err)
	}
	before = liveOK.Load()
	deadline = time.Now().Add(2 * time.Second)
	for liveOK.Load() == before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if liveOK.Load() == before {
		t.Fatal("live range stopped committing after the release")
	}
	close(stop)
	wg.Wait()
}

// TestGroupCommitTrailingFlush: replicated transactions ship their
// commit batches write-back; once the queue idles the committer must
// destage them with a trailing flush.
func TestGroupCommitTrailingFlush(t *testing.T) {
	h := newHarness(t, 2, func(cfg *Config) { cfg.Replicas = 2 })
	ctx := context.Background()
	sess := h.ctl.Session("txer")

	tx := sess.CreateTx()
	for i := 0; i < 3; i++ {
		if err := sess.AddWrite(tx, fmt.Sprintf("txk/%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.CommitTx(ctx, tx); err != nil {
		t.Fatalf("commit: %v", err)
	}
	// The trailing flush runs once the committer goes idle.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if h.ctl.Stats().Snapshot().TrailingFlushes > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if st := h.ctl.Stats().Snapshot(); st.TrailingFlushes == 0 {
		t.Fatal("no trailing flush after a write-back tx commit")
	}
	var flushes uint64
	for _, d := range h.drives {
		flushes += d.Stats().Flushes.Load()
	}
	if flushes == 0 {
		t.Fatal("drives saw no TFlush")
	}
	// And the data is durably readable.
	for i := 0; i < 3; i++ {
		if _, _, err := sess.Get(ctx, fmt.Sprintf("txk/%d", i), GetOptions{}); err != nil {
			t.Fatalf("readback txk/%d: %v", i, err)
		}
	}
}

// TestGroupCommitClose: shutting the controller down under concurrent
// writers neither hangs nor panics; stragglers get ErrClosed (or a
// connection error when their batch was in flight).
func TestGroupCommitClose(t *testing.T) {
	h := newMediaHarness(t, 1, func(int) kinetic.MediaModel { return slowHDD() }, nil)
	ctx := context.Background()
	sess := h.ctl.Session("writer")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := sess.Put(ctx, fmt.Sprintf("cl/%d/%d", w, i), []byte("v"), PutOptions{}); err != nil {
					return // shutdown raced the write; any error is fine
				}
			}
		}(w)
	}
	time.Sleep(10 * time.Millisecond)
	if err := h.ctl.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("writers hung across controller shutdown")
	}
}
