// Scan engine of the v2 API: prefix/range listing over the object
// namespace with opaque pagination tokens. GetKeyRange — dead weight
// above the drive layer until now — fans out across every drive
// concurrently; the per-drive sorted key streams are merge-
// deduplicated under the placement map, and every page is policy-
// filtered server-side so callers never observe keys they cannot
// read (the OPA lesson: enumeration must be policy-aware at the
// server, never client-side).
package core

import (
	"bytes"
	"context"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/authority"
	"repro/internal/policy/lang"
	"repro/internal/store"
)

// Scan page size bounds.
const (
	DefaultScanLimit = 100
	MaxScanLimit     = 512
)

// ScanOptions parameterizes one page of a listing.
type ScanOptions struct {
	// Prefix restricts the listing to keys with this prefix ("" lists
	// everything readable).
	Prefix string
	// Start, when set, begins the listing at the first key >= Start
	// (within the prefix). Ignored when Token resumes a listing.
	Start string
	// Limit caps the entries per page (0 selects DefaultScanLimit,
	// values above MaxScanLimit are clamped).
	Limit int
	// Token resumes a listing after a previous page. Tokens are
	// opaque: the resume position is sealed under an enclave-derived
	// key, so a token never discloses key material — in particular not
	// a policy-denied key the engine skipped at a page boundary.
	Token string
	// Certs are certified facts for the per-object policy checks.
	Certs []*authority.Certificate
}

// ScanEntry is one listed object: its key and current metadata. Keys
// ride as JSONKey so binary (non-UTF-8) keys survive the JSON body.
type ScanEntry struct {
	Key      JSONKey `json:"key"`
	Version  int64   `json:"version"`
	Size     int64   `json:"size"`
	PolicyID string  `json:"policy,omitempty"`
	// Class is the storage class ("ec:k+m" for erasure-coded streamed
	// objects, empty for fully replicated).
	Class string `json:"class,omitempty"`
}

// ScanPage is one page of a listing. NextToken is empty when the
// listing is known to be exhausted. ShardEpoch, on sharded
// controllers, is the shard map epoch the page was filtered under —
// every entry decision used that epoch's ownership view — so a
// cluster router can detect pages straddling a concurrent handoff
// and re-fetch instead of skipping or duplicating boundary keys.
type ScanPage struct {
	Entries    []ScanEntry `json:"entries"`
	NextToken  string      `json:"nextToken,omitempty"`
	ShardEpoch uint64      `json:"shardEpoch,omitempty"`
}

// Scan lists readable objects, one page per call.
func (s *Session) Scan(ctx context.Context, opts ScanOptions) (*ScanPage, error) {
	s.touch()
	return s.ctl.scanObjects(ctx, s.clientKey, opts)
}

// scanObjects serves one page. Per merged key the newest metadata is
// fetched cache-first (the same loader as point reads, so hot listings
// ride the key cache) and the object's policy decides visibility.
func (c *Controller) scanObjects(ctx context.Context, sessionKey string, opts ScanOptions) (*ScanPage, error) {
	if strings.ContainsRune(opts.Prefix, 0) || strings.ContainsRune(opts.Start, 0) {
		return nil, fmt.Errorf("%w: scan bounds must not contain NUL", ErrInvalidArgument)
	}
	limit := opts.Limit
	if limit <= 0 {
		limit = DefaultScanLimit
	}
	if limit > MaxScanLimit {
		limit = MaxScanLimit
	}
	lower, inclusive := opts.Prefix, true
	if opts.Start > lower {
		lower = opts.Start
	}
	if opts.Token != "" {
		resume, err := c.unsealScanToken(opts.Token, opts.Prefix)
		if err != nil {
			return nil, err
		}
		if resume >= lower {
			lower, inclusive = resume, false
		}
	}
	_, rangeEnd := store.MetaKeyRange(opts.Prefix)

	// Epoch-consistent ownership view: the whole page filters against
	// one snapshot, so it is exactly the listing of this shard at that
	// epoch even if a handoff commits mid-scan.
	shardEpoch, ownedRanges, sharded := c.shardSnapshot()

	page := &ScanPage{Entries: []ScanEntry{}, ShardEpoch: shardEpoch}
	cursor := store.MetaKey(lower)
	var filtered uint64
	defer func() {
		// Load accounting: a scan page charges one read per listed
		// entry (meta-only, no payload bytes) so range-heavy workloads
		// show up in the balancer's histogram too.
		for i := range page.Entries {
			c.noteRead(string(page.Entries[i].Key), 0)
		}
		c.stats.Scans.Inc()
		c.stats.ScanFiltered.Add(filtered)
	}()
	for {
		merged, advance, exhausted, err := c.scanRound(ctx, cursor, inclusive, rangeEnd, limit+1)
		if err != nil {
			return nil, err
		}
		if len(merged) == 0 && exhausted {
			return page, nil
		}
		// Cheap filters first — the drive range's inclusive end can
		// admit the first key past the prefix, and sharded controllers
		// list only keys they own under the page's epoch snapshot
		// (anything else is migration residue the router gets from its
		// owner) — so residue never costs a metadata prefetch.
		candidates := merged[:0]
		for _, key := range merged {
			if !strings.HasPrefix(key, opts.Prefix) {
				continue
			}
			if sharded && !RangesContain(ownedRanges, store.ShardHash(key)) {
				continue
			}
			candidates = append(candidates, key)
		}
		// Warm the key cache for the whole candidate batch in parallel
		// (bounded), so the serial filter loop below pays cache hits
		// instead of one replica round trip per key.
		c.prefetchMetas(ctx, candidates)
		// One policyEval for the whole page: the resolved residual and
		// request scratch are reused across every candidate sharing a
		// policy, so the filter loop pays zero policy compilation or
		// cache lookups past the first key per policy.
		pe := &policyEval{}
		for _, key := range candidates {
			meta, err := c.loadMeta(ctx, key)
			if errors.Is(err, ErrNotFound) {
				continue // deleted since the drives reported it
			}
			if err != nil {
				return nil, err
			}
			if err := c.checkPolicyCtx(ctx, pe, lang.PermRead, sessionKey, key, meta, nil, opts.Certs); err != nil {
				if errors.Is(err, ErrDenied) {
					filtered++
					continue
				}
				return nil, err
			}
			page.Entries = append(page.Entries, ScanEntry{
				Key: JSONKey(key), Version: meta.Version, Size: meta.Size, PolicyID: meta.PolicyID,
				Class: meta.StorageClass(),
			})
			if len(page.Entries) == limit {
				// More candidates may remain (in this round or on the
				// drives): hand back a resume token positioned on the
				// last *returned* key. Denied keys past it are
				// re-examined — and re-suppressed — next page, so no
				// page boundary ever leaks one.
				page.NextToken = c.sealScanToken(opts.Prefix, key)
				return page, nil
			}
		}
		if exhausted {
			return page, nil
		}
		// Resume past the completeness horizon: every key at or below
		// it has been merged and examined this round (even ones the
		// placement filter dropped, which is what keeps the cursor
		// advancing over stale artifacts).
		cursor, inclusive = advance, false
	}
}

// scanRound asks every drive for its next batch of metadata keys in
// [cursor, rangeEnd] and merges them. Because each drive truncates its
// response independently, merged keys are only trustworthy up to the
// smallest last-key among truncated drives (the completeness horizon);
// keys beyond it are dropped and re-fetched next round. advance is the
// horizon — the drive key up to which this round is complete — for the
// caller's cursor. Up to Replicas-1 drive failures are tolerated:
// every object then still has a surviving replica reporting it.
func (c *Controller) scanRound(ctx context.Context, cursor []byte, inclusive bool, rangeEnd []byte, want int) (keys []string, advance []byte, exhausted bool, err error) {
	fetch := want
	if fetch > driveRangeCap {
		fetch = driveRangeCap
	}
	type driveKeys struct {
		di        int
		keys      [][]byte
		truncated bool
		err       error
	}
	results := make([]driveKeys, len(c.drives))
	err = c.fanout(allDrives(len(c.drives)), func(di int) error {
		cl := c.drives[di].pick()
		c.chargeDriveIO(0)
		ks, err := cl.GetKeyRange(ctx, cursor, rangeEnd, inclusive, false, fetch)
		results[di] = driveKeys{di: di, keys: ks, truncated: len(ks) >= fetch, err: err}
		return nil
	})
	if err != nil {
		return nil, nil, false, err
	}

	failures := 0
	var lastErr error
	var horizon []byte // smallest last-key among truncated drives
	// The placement-sanity filter uses drive bitmasks; past 64 drives
	// it is skipped (1<<65 would silently drop live keys) — dedup and
	// the metadata load still keep the listing correct.
	maskable := len(c.drives) <= 64
	reporters := make(map[string]uint64)
	for _, r := range results {
		if r.err != nil {
			failures++
			lastErr = r.err
			continue
		}
		if r.truncated {
			last := r.keys[len(r.keys)-1]
			if horizon == nil || bytes.Compare(last, horizon) < 0 {
				horizon = last
			}
		}
		for _, dk := range r.keys {
			if len(dk) < 2 {
				continue
			}
			if maskable {
				reporters[string(dk)] |= 1 << uint(r.di)
			} else {
				reporters[string(dk)] = 1
			}
		}
	}
	if failures > 0 && failures >= c.cfg.Replicas {
		return nil, nil, false, fmt.Errorf("core: scan cannot guarantee coverage, %d drives failed: %w", failures, lastErr)
	}
	for dk, mask := range reporters {
		if horizon != nil && bytes.Compare([]byte(dk), horizon) > 0 {
			delete(reporters, dk) // beyond the completeness horizon
			continue
		}
		key := dk[2:] // strip the metadata namespace prefix
		// Placement sanity: a key reported only by drives outside its
		// placement is a stale artifact (e.g. of a drive-set change),
		// not a live object.
		if maskable && mask&c.placementMask(key) == 0 {
			delete(reporters, dk)
		}
	}
	keys = make([]string, 0, len(reporters))
	for dk := range reporters {
		keys = append(keys, dk[2:])
	}
	sort.Strings(keys)
	return keys, horizon, horizon == nil, nil
}

// prefetchMetas loads candidate keys' metadata concurrently (bounded),
// errors ignored — the caller's serial loop re-loads from cache and
// handles failures per key.
func (c *Controller) prefetchMetas(ctx context.Context, keys []string) {
	if len(keys) < 2 {
		return
	}
	sem := make(chan struct{}, batchParallelism(len(keys)))
	var wg sync.WaitGroup
	for _, key := range keys {
		if _, ok := c.metaCache.Get(key); ok {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(key string) {
			defer wg.Done()
			defer func() { <-sem }()
			_, _ = c.loadMeta(ctx, key)
		}(key)
	}
	wg.Wait()
}

// placementMask is the drive bitmask of a key's placement (dead-drive
// substitution applied).
func (c *Controller) placementMask(key string) uint64 {
	var m uint64
	for _, di := range c.placement(key) {
		m |= 1 << uint(di)
	}
	return m
}

// allDrives enumerates every drive index (scans must consult all
// drives: placement spreads keys across the whole set).
func allDrives(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Pagination tokens. A token is the resume key plus the listing's
// prefix, sealed with AES-GCM under a key derived from the attested
// object key. Sealing keeps tokens opaque (no key material leaks, not
// even of policy-denied keys the page skipped) and self-
// authenticating (a tampered token fails open, ErrBadToken). Tokens
// carry a position, not a snapshot: listings resumed under concurrent
// writes stay valid and serve the keys now present past the position.

const scanTokenInfo = "pesos-scan-token-v1"

// initScanTokens derives the token sealing key; called at bootstrap.
func (c *Controller) initScanTokens() error {
	mac := hmac.New(sha256.New, c.secrets.ObjectKey[:])
	mac.Write([]byte(scanTokenInfo))
	block, err := aes.NewCipher(mac.Sum(nil))
	if err != nil {
		return err
	}
	c.scanTokens, err = cipher.NewGCM(block)
	return err
}

// sealScanToken builds the opaque resume token for a position.
func (c *Controller) sealScanToken(prefix, resume string) string {
	plain := make([]byte, 0, len(prefix)+len(resume)+1)
	plain = append(plain, prefix...)
	plain = append(plain, 0) // keys and prefixes never contain NUL
	plain = append(plain, resume...)
	nonce := make([]byte, c.scanTokens.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		// Entropy failure: returning no token truncates pagination
		// instead of minting a forgeable one.
		return ""
	}
	sealed := c.scanTokens.Seal(nonce, nonce, plain, nil)
	return base64.RawURLEncoding.EncodeToString(sealed)
}

// unsealScanToken authenticates a token and returns its resume key.
// The token must belong to a listing with the same prefix.
func (c *Controller) unsealScanToken(token, prefix string) (string, error) {
	raw, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil || len(raw) < c.scanTokens.NonceSize() {
		return "", ErrBadToken
	}
	ns := c.scanTokens.NonceSize()
	plain, err := c.scanTokens.Open(nil, raw[:ns], raw[ns:], nil)
	if err != nil {
		return "", ErrBadToken
	}
	p, resume, ok := strings.Cut(string(plain), "\x00")
	if !ok || p != prefix {
		return "", fmt.Errorf("%w: token belongs to a different listing", ErrBadToken)
	}
	return resume, nil
}
