// Cluster sharding support: a controller can be configured as one
// shard of a multi-controller cluster, owning a set of ranges of the
// keyspace-hash space (store.ShardHash). Ownership is enforced at the
// API entry points — operations on keys outside the owned ranges are
// answered with ErrWrongShard so a cluster router refreshes its shard
// map and redirects — and never inside the internal loaders, which a
// migration must be able to drive across ownership boundaries.
//
// Live shard handoff runs in four controller-level primitives the
// cluster coordinator composes (see internal/cluster):
//
//	FreezeRange    losing side: writes to the moving range block
//	ExportRange    losing side: P2P-copy every record to the gaining
//	               shard's drives, returning a version manifest
//	VerifyImport   gaining side: re-read and integrity-check the
//	               manifest off its own drives
//	AdoptRange /   gaining side takes the range at the new epoch;
//	ReleaseRange   losing side drops it, rotates its drives' HMAC
//	               credentials (locking out any stale owner) and
//	               destroys the migrated records
//
// Blocked writers wake from ReleaseRange into ErrWrongShard, so an
// in-flight client sees at most one retriable redirect and never a
// lost or duplicated write.
package core

import (
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/kinetic/kclient"
	"repro/internal/kinetic/wire"
	"repro/internal/store"
)

// ErrWrongShard rejects an operation on a key this controller does not
// own under the current shard map epoch. It is retriable: the client
// refreshes its shard map and redirects to the owning controller.
var ErrWrongShard = errors.New("pesos: key not owned by this shard")

// HashRange is a half-open range [Start, End) of the keyspace-hash
// space [0, store.ShardSpace).
type HashRange struct {
	Start uint32 `json:"start"`
	End   uint32 `json:"end"`
}

// Contains reports whether the range covers hash point h.
func (r HashRange) Contains(h uint32) bool { return h >= r.Start && h < r.End }

// Empty reports whether the range covers nothing.
func (r HashRange) Empty() bool { return r.Start >= r.End }

// String implements fmt.Stringer.
func (r HashRange) String() string { return fmt.Sprintf("[%d,%d)", r.Start, r.End) }

// RangesContain reports whether any range covers hash point h.
func RangesContain(ranges []HashRange, h uint32) bool {
	for _, r := range ranges {
		if r.Contains(h) {
			return true
		}
	}
	return false
}

// NormalizeRanges sorts ranges, drops empty ones and merges adjacent
// or overlapping ones.
func NormalizeRanges(ranges []HashRange) []HashRange {
	out := make([]HashRange, 0, len(ranges))
	for _, r := range ranges {
		if !r.Empty() {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	merged := out[:0]
	for _, r := range out {
		if n := len(merged); n > 0 && r.Start <= merged[n-1].End {
			if r.End > merged[n-1].End {
				merged[n-1].End = r.End
			}
			continue
		}
		merged = append(merged, r)
	}
	return merged
}

// SubtractRanges removes r from ranges, splitting any range it cuts.
func SubtractRanges(ranges []HashRange, r HashRange) []HashRange {
	if r.Empty() {
		return NormalizeRanges(ranges)
	}
	var out []HashRange
	for _, cur := range NormalizeRanges(ranges) {
		if r.End <= cur.Start || r.Start >= cur.End {
			out = append(out, cur)
			continue
		}
		if cur.Start < r.Start {
			out = append(out, HashRange{Start: cur.Start, End: r.Start})
		}
		if r.End < cur.End {
			out = append(out, HashRange{Start: r.End, End: cur.End})
		}
	}
	return out
}

// rangesCover reports whether the (normalized) ranges fully cover r.
func rangesCover(ranges []HashRange, r HashRange) bool {
	if r.Empty() {
		return true
	}
	at := r.Start
	for _, cur := range NormalizeRanges(ranges) {
		if cur.Start > at {
			return false
		}
		if cur.End > at {
			at = cur.End
			if at >= r.End {
				return true
			}
		}
	}
	return false
}

// ShardInfo is one controller's slice of the cluster keyspace.
type ShardInfo struct {
	// ID is this controller's shard id in the cluster map.
	ID int `json:"id"`
	// Epoch is the shard map epoch the controller last adopted. Stale
	// routers are fenced by it: every redirect carries the epoch, and
	// the map a router refreshes to must be newer.
	Epoch uint64 `json:"epoch"`
	// Ranges are the owned hash ranges.
	Ranges []HashRange `json:"ranges"`
}

// shardView is one immutable snapshot of the sharding state. Read
// paths load it atomically and never touch the drain lock, so a
// pending freeze (waiting out in-flight writes) cannot stall reads —
// the "reads are never blocked by a freeze" contract.
type shardView struct {
	info   ShardInfo
	frozen []HashRange
	mapDoc []byte // signed cluster map document (opaque to core)
	// standby true means this controller holds the shard's drives and
	// configuration but is NOT the active owner: every client
	// operation answers ErrWrongShard (routers redirect to the active)
	// until Activate promotes it after a lease win.
	standby bool
}

// shardState is the controller's live sharding state. The RWMutex is
// the write drain barrier: every mutating operation holds the read
// side across its drive commit, so FreezeRange (which takes the write
// side) returns only once in-flight writes have drained. State
// changes happen under the write side and publish a fresh view.
type shardState struct {
	mu   sync.RWMutex
	view atomic.Pointer[shardView]
	// gate is closed when the frozen set empties; writers blocked on a
	// frozen range wait on it. Mutated under mu.
	gate chan struct{}
}

func newShardState(info ShardInfo, mapDoc []byte, standby bool) *shardState {
	s := &shardState{}
	s.view.Store(&shardView{info: info, mapDoc: append([]byte(nil), mapDoc...), standby: standby})
	return s
}

// update publishes a new view derived from the current one (deep
// copies, so loaded views stay immutable). Caller holds s.mu.
func (s *shardState) update(f func(v *shardView)) {
	cur := s.view.Load()
	next := &shardView{
		info: ShardInfo{
			ID:     cur.info.ID,
			Epoch:  cur.info.Epoch,
			Ranges: append([]HashRange(nil), cur.info.Ranges...),
		},
		frozen:  append([]HashRange(nil), cur.frozen...),
		mapDoc:  cur.mapDoc,
		standby: cur.standby,
	}
	f(next)
	s.view.Store(next)
}

// wrongShard builds the redirect error and counts it.
func (c *Controller) wrongShard(key string) error {
	c.stats.WrongShard.Inc()
	return fmt.Errorf("%w: %q", ErrWrongShard, key)
}

// owns reports ownership of key. Unsharded controllers own everything.
func (c *Controller) owns(key string) bool {
	s := c.shard
	if s == nil {
		return true
	}
	v := s.view.Load()
	return !v.standby && RangesContain(v.info.Ranges, store.ShardHash(key))
}

// checkOwned is the read-path ownership gate. Reads are never blocked
// by a freeze — not even by one waiting out the write drain — because
// they load the shard view atomically instead of taking the drain
// lock; the data stays readable on the losing side until ReleaseRange.
func (c *Controller) checkOwned(key string) error {
	if !c.owns(key) {
		return c.wrongShard(key)
	}
	return nil
}

// beginWrite is the write-path gate: it verifies ownership of every
// key and blocks while any of them lies in a frozen (migrating) range.
// On success the returned release function MUST be called after the
// drive commit — the caller holds the shard read lock in between,
// which is what lets FreezeRange drain in-flight writes. Lock order is
// strict: key stripe locks first, then the shard lock.
func (c *Controller) beginWrite(ctx context.Context, keys ...string) (release func(), err error) {
	release, owned, err := c.beginWriteFiltered(ctx, keys)
	if err != nil {
		return nil, err
	}
	for i, ok := range owned {
		if !ok {
			release()
			return nil, c.wrongShard(keys[i])
		}
	}
	return release, nil
}

// beginWriteFiltered is beginWrite for multi-key requests with per-op
// results: unowned keys are reported in the mask instead of failing
// the whole request, and the freeze wait applies only to owned keys.
func (c *Controller) beginWriteFiltered(ctx context.Context, keys []string) (release func(), owned []bool, err error) {
	s := c.shard
	owned = make([]bool, len(keys))
	if s == nil {
		for i := range owned {
			owned[i] = true
		}
		return func() {}, owned, nil
	}
	for {
		s.mu.RLock()
		v := s.view.Load()
		blocked := false
		for i, k := range keys {
			h := store.ShardHash(k)
			owned[i] = !v.standby && RangesContain(v.info.Ranges, h)
			if owned[i] && RangesContain(v.frozen, h) {
				blocked = true
			}
		}
		if !blocked {
			return s.mu.RUnlock, owned, nil
		}
		gate := s.gate
		s.mu.RUnlock()
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
}

// ShardStatus is the sharding section of /v1/status.
type ShardStatus struct {
	ID      int         `json:"id"`
	Epoch   uint64      `json:"epoch"`
	Ranges  []HashRange `json:"ranges"`
	Frozen  []HashRange `json:"frozen,omitempty"`
	Standby bool        `json:"standby,omitempty"`
}

// ShardStatus reports the controller's current shard state, nil when
// unsharded.
func (c *Controller) ShardStatus() *ShardStatus {
	s := c.shard
	if s == nil {
		return nil
	}
	v := s.view.Load()
	return &ShardStatus{
		ID:      v.info.ID,
		Epoch:   v.info.Epoch,
		Ranges:  v.info.Ranges,
		Frozen:  v.frozen,
		Standby: v.standby,
	}
}

// IsStandby reports whether the controller is a hot standby (sharded,
// not serving).
func (c *Controller) IsStandby() bool {
	s := c.shard
	return s != nil && s.view.Load().standby
}

// ClusterMapDoc returns the signed cluster map document the controller
// currently holds (nil when unsharded or never set). The document is
// opaque to core; internal/cluster defines and verifies its format.
func (c *Controller) ClusterMapDoc() []byte {
	s := c.shard
	if s == nil {
		return nil
	}
	return s.view.Load().mapDoc
}

// SetClusterMapDoc installs a new signed cluster map document for
// distribution via /v1/cluster/map. The caller (the cluster
// coordinator) has verified it.
func (c *Controller) SetClusterMapDoc(doc []byte) {
	s := c.shard
	if s == nil {
		return
	}
	copied := append([]byte(nil), doc...)
	s.mu.Lock()
	s.update(func(v *shardView) { v.mapDoc = copied })
	s.mu.Unlock()
}

// FreezeRange blocks writes to r (which must lie inside the owned
// ranges) until the range is released or unfrozen. Acquiring the shard
// write lock drains every in-flight write first, so when FreezeRange
// returns, the records under r are immutable and safe to copy.
func (c *Controller) FreezeRange(r HashRange) error {
	s := c.shard
	if s == nil {
		return errors.New("core: controller is not sharded")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.view.Load()
	if !rangesCover(v.info.Ranges, r) {
		return fmt.Errorf("core: freeze %v outside owned ranges %v", r, v.info.Ranges)
	}
	s.update(func(v *shardView) { v.frozen = append(v.frozen, r) })
	if s.gate == nil {
		s.gate = make(chan struct{})
	}
	return nil
}

// UnfreezeRange aborts a freeze without changing ownership (handoff
// rollback). Blocked writers resume normally.
func (c *Controller) UnfreezeRange(r HashRange) {
	s := c.shard
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropFrozenLocked(r)
}

func (s *shardState) dropFrozenLocked(r HashRange) {
	s.update(func(v *shardView) {
		kept := v.frozen[:0]
		for _, f := range v.frozen {
			if f != r {
				kept = append(kept, f)
			}
		}
		v.frozen = kept
	})
	// Wake every waiter on ANY frozen-set change: writers re-evaluate
	// against the new view, and those on a still-frozen range park on
	// a fresh gate. Waking only when the set empties would strand the
	// released range's writers behind an unrelated concurrent freeze.
	if s.gate != nil {
		close(s.gate)
		if len(s.view.Load().frozen) == 0 {
			s.gate = nil
		} else {
			s.gate = make(chan struct{})
		}
	}
}

// shardSnapshot returns an atomic view of the shard state for
// operations that must be consistent against one epoch (scans report
// the epoch of the view they were filtered under, so a router can
// reject pages torn across a concurrent handoff).
func (c *Controller) shardSnapshot() (epoch uint64, ranges []HashRange, sharded bool) {
	s := c.shard
	if s == nil {
		return 0, nil, false
	}
	v := s.view.Load()
	return v.info.Epoch, v.info.Ranges, true
}

// AdvanceEpoch raises the controller's shard map epoch without a
// range change — the cluster coordinator calls it on the controllers
// not participating in a handoff, so every shard answers scans under
// the same epoch again once the new map is published.
func (c *Controller) AdvanceEpoch(epoch uint64) {
	s := c.shard
	if s == nil {
		return
	}
	s.mu.Lock()
	if epoch > s.view.Load().info.Epoch {
		s.update(func(v *shardView) { v.info.Epoch = epoch })
	}
	s.mu.Unlock()
}

// AdoptRange extends the owned ranges by r at the given (newer) shard
// map epoch — the gaining side of a handoff, called after VerifyImport
// succeeded.
func (c *Controller) AdoptRange(epoch uint64, r HashRange) error {
	s := c.shard
	if s == nil {
		return errors.New("core: controller is not sharded")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch <= s.view.Load().info.Epoch {
		return fmt.Errorf("core: adopt at epoch %d, already at %d", epoch, s.view.Load().info.Epoch)
	}
	s.update(func(v *shardView) {
		v.info.Epoch = epoch
		v.info.Ranges = NormalizeRanges(append(v.info.Ranges, r))
	})
	return nil
}

// MigrationTarget describes the gaining shard's drive layout, which
// determines the placement of migrated records.
type MigrationTarget struct {
	// Drives are the gaining controller's drive names, in its
	// configuration order (placement is positional).
	Drives []string
	// Replicas is the gaining controller's copy count per object.
	Replicas int
}

// ManifestEntry records one migrated object's head version.
type ManifestEntry struct {
	Key     string `json:"key"`
	Version int64  `json:"version"`
}

// Manifest is the record of one range migration: what moved and at
// which versions, for the gaining side to verify and the losing side
// to destroy.
type Manifest struct {
	Range    HashRange       `json:"range"`
	Entries  []ManifestEntry `json:"entries"`
	Policies []string        `json:"policies"`
}

// ExportRange copies every record under the (frozen) range r — object
// records of all versions, streamed chunks, latest metadata, plus the
// policies those objects reference — from this controller's drives to
// the target shard's drives using the Kinetic device-to-device P2P
// copy: no payload is relayed through either controller. Returns the
// manifest of migrated keys and head versions.
func (c *Controller) ExportRange(ctx context.Context, r HashRange, target MigrationTarget) (*Manifest, error) {
	if len(target.Drives) == 0 {
		return nil, errors.New("core: migration target has no drives")
	}
	if target.Replicas <= 0 {
		target.Replicas = 1
	}
	keys, err := c.keysInRange(ctx, r)
	if err != nil {
		return nil, err
	}
	m := &Manifest{Range: r}
	policies := make(map[string]bool)
	var mu sync.Mutex
	sem := make(chan struct{}, 8)
	var wg sync.WaitGroup
	errCh := make(chan error, 1)
	for _, key := range keys {
		wg.Add(1)
		sem <- struct{}{}
		go func(key string) {
			defer wg.Done()
			defer func() { <-sem }()
			entry, policyID, err := c.exportKey(ctx, key, target)
			if err != nil {
				select {
				case errCh <- fmt.Errorf("core: export %q: %w", key, err):
				default:
				}
				return
			}
			if entry == nil {
				return // vanished between enumeration and export
			}
			mu.Lock()
			m.Entries = append(m.Entries, *entry)
			if policyID != "" {
				policies[policyID] = true
			}
			mu.Unlock()
		}(key)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	for id := range policies {
		m.Policies = append(m.Policies, id)
		if err := c.exportPolicy(ctx, id, target); err != nil {
			return nil, err
		}
	}
	sort.Slice(m.Entries, func(i, j int) bool { return m.Entries[i].Key < m.Entries[j].Key })
	sort.Strings(m.Policies)
	return m, nil
}

// keysInRange enumerates the object keys stored on this controller's
// drives whose shard hash falls in r. Every drive is consulted so up
// to Replicas-1 degraded replicas cannot hide a key.
func (c *Controller) keysInRange(ctx context.Context, r HashRange) ([]string, error) {
	start, end := store.MetaKeyRange("")
	seen := make(map[string]bool)
	var failures int
	var lastErr error
	for _, p := range c.drives {
		driveKeys, err := c.rangeAll(ctx, p.pick(), start, end)
		if err != nil {
			failures++
			lastErr = err
			continue
		}
		for _, dk := range driveKeys {
			if len(dk) < 2 {
				continue
			}
			key := string(dk[2:])
			if r.Contains(store.ShardHash(key)) {
				seen[key] = true
			}
		}
	}
	if failures > 0 && failures >= c.cfg.Replicas {
		return nil, fmt.Errorf("core: range enumeration cannot guarantee coverage, %d drives failed: %w", failures, lastErr)
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// exportKey pushes all of one object's drive records to the target's
// placement drives. Returns nil entry if the object no longer exists.
func (c *Controller) exportKey(ctx context.Context, key string, target MigrationTarget) (*ManifestEntry, string, error) {
	meta, err := c.loadMeta(ctx, key)
	if errors.Is(err, ErrNotFound) {
		return nil, "", nil
	}
	if err != nil {
		return nil, "", err
	}
	// Enumerate the record set as the UNION across all placement
	// replicas: a responsive replica in the degraded pre-repair state
	// (missing some version or chunk records) must not silently
	// truncate the migration — the destruction at release is the last
	// chance to have copied every surviving record.
	placement := c.placement(key)
	ostart, oend := store.ObjectKeyRange(key)
	cstart, cend := store.ChunkKeyRange(key)
	recordSet := map[string]bool{string(store.MetaKey(key)): true}
	failures := 0
	var enumErr error
	for _, di := range placement {
		cl := c.drives[di].pick()
		objKeys, err1 := c.rangeAll(ctx, cl, ostart, oend)
		chunkKeys, err2 := c.rangeAll(ctx, cl, cstart, cend)
		if err1 != nil || err2 != nil {
			failures++
			enumErr = errors.Join(err1, err2)
			continue
		}
		for _, k := range objKeys {
			recordSet[string(k)] = true
		}
		for _, k := range chunkKeys {
			recordSet[string(k)] = true
		}
	}
	if failures == len(placement) {
		return nil, "", enumErr
	}
	driveKeys := make([][]byte, 0, len(recordSet))
	for k := range recordSet {
		driveKeys = append(driveKeys, []byte(k))
	}
	sort.Slice(driveKeys, func(i, j int) bool { return string(driveKeys[i]) < string(driveKeys[j]) })
	targets := make([]string, 0, target.Replicas)
	for _, ti := range store.Placement(key, len(target.Drives), target.Replicas) {
		targets = append(targets, target.Drives[ti])
	}
	for _, dk := range driveKeys {
		if err := c.p2pCopy(ctx, placement, dk, targets); err != nil {
			return nil, "", err
		}
	}
	return &ManifestEntry{Key: key, Version: meta.Version}, meta.PolicyID, nil
}

// exportPolicy pushes one compiled policy record to the target drives
// its content address places it on.
func (c *Controller) exportPolicy(ctx context.Context, id string, target MigrationTarget) error {
	placement := c.placement(id)
	targets := make([]string, 0, target.Replicas)
	for _, ti := range store.Placement(id, len(target.Drives), target.Replicas) {
		targets = append(targets, target.Drives[ti])
	}
	if err := c.p2pCopy(ctx, placement, store.PolicyKey(id), targets); err != nil {
		return fmt.Errorf("core: export policy %q: %w", id, err)
	}
	return nil
}

// p2pCopy pushes one drive record from any replica holding it to every
// named target drive, failing over across source replicas.
func (c *Controller) p2pCopy(ctx context.Context, placement []int, driveKey []byte, targets []string) error {
	for _, peer := range targets {
		var lastErr error
		ok := false
		for _, di := range placement {
			c.chargeDriveIO(0)
			err := c.drives[di].pick().P2PPush(ctx, driveKey, peer)
			if err == nil {
				ok = true
				break
			}
			if errors.Is(err, kclient.ErrNotFound) {
				// This replica never had the record (degraded pre-repair
				// state); another may.
				lastErr = err
				continue
			}
			lastErr = err
		}
		if !ok {
			return fmt.Errorf("core: p2p copy %q to %s: %w", driveKey, peer, lastErr)
		}
	}
	return nil
}

// VerifyImport is the gaining side's acceptance check: every manifest
// entry must be readable off this controller's own drives at exactly
// the manifested version, with payload integrity intact, and every
// referenced policy must be present. Called before AdoptRange, so it
// deliberately bypasses the ownership gate (internal loaders never
// check ownership).
func (c *Controller) VerifyImport(ctx context.Context, m *Manifest) error {
	sem := make(chan struct{}, 8)
	var wg sync.WaitGroup
	errCh := make(chan error, 1)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	for _, e := range m.Entries {
		wg.Add(1)
		sem <- struct{}{}
		go func(e ManifestEntry) {
			defer wg.Done()
			defer func() { <-sem }()
			meta, err := c.fetchMeta(ctx, e.Key)
			if err != nil {
				fail(fmt.Errorf("core: import verify %q: %w", e.Key, err))
				return
			}
			if meta.Version != e.Version {
				fail(fmt.Errorf("core: import verify %q: version %d, manifest says %d",
					e.Key, meta.Version, e.Version))
				return
			}
			rec, err := c.fetchRecord(ctx, e.Key, e.Version)
			if err != nil {
				fail(fmt.Errorf("core: import verify %q v%d: %w", e.Key, e.Version, err))
				return
			}
			if rec.Meta.Chunks > 0 {
				if err := c.verifyChunks(ctx, &rec.Meta); err != nil {
					fail(fmt.Errorf("core: import verify %q v%d chunks: %w", e.Key, e.Version, err))
				}
			}
		}(e)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	for _, id := range m.Policies {
		if _, err := c.fetchPolicy(ctx, id); err != nil {
			return fmt.Errorf("core: import verify policy %q: %w", id, err)
		}
	}
	return nil
}

// ReleaseRange completes the losing side of a handoff: ownership of r
// is dropped at the new epoch (waking blocked writers into
// ErrWrongShard redirects), the drives' admin HMAC credentials are
// rotated so any stale owner process is locked out at the drive layer,
// and the migrated records are destroyed and purged from the caches.
// The new shard map must already be published — redirected clients
// refresh it immediately.
//
// The call is retriable: re-invoking it at the same epoch (after a
// transient rotation or destruction failure) re-runs the idempotent
// fencing and destruction steps without touching ownership again.
func (c *Controller) ReleaseRange(ctx context.Context, epoch uint64, r HashRange, m *Manifest) error {
	s := c.shard
	if s == nil {
		return errors.New("core: controller is not sharded")
	}
	s.mu.Lock()
	cur := s.view.Load()
	switch {
	case epoch < cur.info.Epoch:
		s.mu.Unlock()
		return fmt.Errorf("core: release at epoch %d, already at %d", epoch, cur.info.Epoch)
	case epoch == cur.info.Epoch:
		// Retry of a partially-failed release: ownership must already
		// be gone, only the fencing/destruction below is re-run.
		if rangesOverlap(cur.info.Ranges, r) {
			s.mu.Unlock()
			return fmt.Errorf("core: release retry at epoch %d but %v still owned", epoch, r)
		}
		s.mu.Unlock()
	default:
		s.update(func(v *shardView) {
			v.info.Epoch = epoch
			v.info.Ranges = SubtractRanges(v.info.Ranges, r)
		})
		s.dropFrozenLocked(r)
		s.mu.Unlock()
	}

	// Fencing: rotate before destroying records, so a stale co-owner
	// cannot resurrect them afterwards. Both steps are idempotent —
	// rotation skips drives already on the epoch's account, and the
	// destruction force-deletes.
	if err := c.RotateDriveCredentials(ctx, epoch); err != nil {
		return err
	}
	return c.destroyMigrated(ctx, m)
}

// rangesOverlap reports whether any of ranges intersects r.
func rangesOverlap(ranges []HashRange, r HashRange) bool {
	for _, cur := range ranges {
		if r.Start < cur.End && cur.Start < r.End {
			return true
		}
	}
	return false
}

// destroyMigrated force-deletes every migrated record from this
// controller's drives and purges the corresponding cache entries.
// Reads of these keys already redirect (ownership is gone), so the
// destruction only reclaims space and removes stale state.
func (c *Controller) destroyMigrated(ctx context.Context, m *Manifest) error {
	var firstErr error
	for _, e := range m.Entries {
		placement := c.placement(e.Key)
		err := c.fanout(placement, func(di int) error {
			return c.destroyKey(ctx, di, e.Key)
		})
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("core: destroy migrated %q: %w", e.Key, err)
		}
		c.metaFlight.Forget(e.Key)
		c.metaCache.Remove(e.Key)
		for v := int64(0); v <= e.Version; v++ {
			ck := string(store.ObjectKey(e.Key, v))
			c.objectFlight.Forget(ck)
			c.objectCache.Remove(ck)
		}
	}
	return firstErr
}

// destroyKey force-deletes one key's metadata, object records and
// chunk records on one drive (no CAS guards: the range was frozen and
// ownership is gone, there is no concurrent writer to respect).
func (c *Controller) destroyKey(ctx context.Context, di int, key string) error {
	cl := c.drives[di].pick()
	ostart, oend := store.ObjectKeyRange(key)
	keys, err := c.rangeAll(ctx, cl, ostart, oend)
	if err != nil {
		return err
	}
	cstart, cend := store.ChunkKeyRange(key)
	chunkKeys, err := c.rangeAll(ctx, cl, cstart, cend)
	if err != nil {
		return err
	}
	keys = append(keys, chunkKeys...)
	ops := make([]wire.BatchOp, 0, len(keys)+1)
	ops = append(ops, wire.BatchOp{Op: wire.BatchDelete, Key: store.MetaKey(key), Force: true})
	for _, k := range keys {
		ops = append(ops, wire.BatchOp{Op: wire.BatchDelete, Key: k, Force: true})
	}
	for len(ops) > 0 {
		n := min(len(ops), wire.MaxBatchOps)
		c.chargeDriveIO(0)
		if err := cl.Batch(ctx, ops[:n]); err != nil {
			return err
		}
		ops = ops[n:]
	}
	// Purge the destroyed records' cache entries by their drive keys —
	// this covers streamed chunk records too, which are cached under
	// ChunkKey and invisible to a version-number sweep.
	for _, k := range keys {
		c.objectFlight.Forget(string(k))
		c.objectCache.Remove(string(k))
	}
	return nil
}

// adminKeyForEpoch derives the per-drive admin HMAC secret for a shard
// map epoch. Epoch 0 is the bootstrap key (adminKeyFor), so unsharded
// deployments and epoch-0 clusters share the derivation.
func (c *Controller) adminKeyForEpoch(driveName string, epoch uint64) []byte {
	if epoch == 0 {
		return c.adminKeyFor(driveName)
	}
	mac := hmac.New(sha256.New, c.secrets.AdminSeed[:])
	fmt.Fprintf(mac, "drive-admin:%s|epoch:%d", driveName, epoch)
	return mac.Sum(nil)
}

// adminIdentityForEpoch names the per-epoch admin account.
func adminIdentityForEpoch(epoch uint64) string {
	if epoch == 0 {
		return AdminIdentity
	}
	return fmt.Sprintf("%s-e%d", AdminIdentity, epoch)
}

// AdoptDriveCredentials switches the drive connection pools to the
// epoch's derived admin accounts WITHOUT touching the drives — the
// observer-side mirror of RotateDriveCredentials. A standby calls it
// when the cluster map shows a newer CredEpoch (the active rotated),
// so its pools keep authenticating; no drive state changes because
// the accounts were already installed by the rotating controller.
func (c *Controller) AdoptDriveCredentials(epoch uint64) {
	id := adminIdentityForEpoch(epoch)
	for i, p := range c.drives {
		if p.credentials().Identity == id {
			continue
		}
		p.setCredentials(kclient.Credentials{
			Identity: id,
			Key:      c.adminKeyForEpoch(c.cfg.Drives[i].Name, epoch),
		})
	}
}

// Activate promotes a standby to the shard's active controller at the
// given (newer) epoch. The caller must have won the shard's lease and
// completed the fencing credential rotation first, and must have
// stopped any cache-warming loop: activation drops the version-
// bearing caches (meta and object), because entries warmed while the
// old active was still committing may be stale — serving them would
// lose acknowledged writes from a reader's point of view. The
// content-addressed policy caches survive, which is most of what
// warming buys.
func (c *Controller) Activate(epoch uint64) error {
	s := c.shard
	if s == nil {
		return errors.New("core: controller is not sharded")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.view.Load()
	if !v.standby {
		return errors.New("core: controller is not a standby")
	}
	if epoch < v.info.Epoch {
		return fmt.Errorf("core: activate at epoch %d, already at %d", epoch, v.info.Epoch)
	}
	c.metaCache.Clear()
	c.objectCache.Clear()
	s.update(func(v *shardView) {
		v.standby = false
		v.info.Epoch = epoch
	})
	// The promoted owner inherits maintenance duty: start the failure
	// detector and anti-entropy loops the standby held back.
	c.startMaintenance()
	return nil
}

// WarmRanges pre-faults the standby's caches: it enumerates the keys
// stored under the owned ranges and loads each key's metadata (and
// transitively the referenced policies) through the normal cache-
// filling loaders, up to limit keys per call. Ownership gates don't
// apply — internal loaders never check them — so this works in
// standby mode. Returns the number of keys warmed.
func (c *Controller) WarmRanges(ctx context.Context, limit int) (int, error) {
	s := c.shard
	if s == nil {
		return 0, errors.New("core: controller is not sharded")
	}
	if limit <= 0 {
		limit = 1024
	}
	warmed := 0
	for _, r := range s.view.Load().info.Ranges {
		keys, err := c.keysInRange(ctx, r)
		if err != nil {
			return warmed, err
		}
		for _, key := range keys {
			if warmed >= limit {
				return warmed, nil
			}
			meta, err := c.loadMeta(ctx, key)
			if err != nil {
				continue // vanished or degraded; warming is best-effort
			}
			if meta.PolicyID != "" {
				_, _ = c.loadPolicy(ctx, meta.PolicyID)
			}
			warmed++
			if ctx.Err() != nil {
				return warmed, ctx.Err()
			}
		}
	}
	return warmed, nil
}

// RotateDriveCredentials installs fresh epoch-derived admin accounts
// on every drive and switches the connection pools to them, locking
// out any holder of the previous epoch's credentials. The rotation is
// two-phase per drive — install both accounts, switch the pool, drop
// the old account — so concurrent requests never race an HMAC-key
// change.
func (c *Controller) RotateDriveCredentials(ctx context.Context, epoch uint64) error {
	nextID := adminIdentityForEpoch(epoch)
	for i, p := range c.drives {
		cur := p.credentials()
		if cur.Identity == nextID {
			continue
		}
		next := kclient.Credentials{Identity: nextID, Key: c.adminKeyForEpoch(c.cfg.Drives[i].Name, epoch)}
		both := []wire.ACL{
			{Identity: cur.Identity, Key: cur.Key, Perms: wire.PermAll},
			{Identity: next.Identity, Key: next.Key, Perms: wire.PermAll},
		}
		if err := p.pick().SetSecurity(ctx, both, nil); err != nil {
			return fmt.Errorf("core: rotate credentials on %s (install): %w", p.name, err)
		}
		p.setCredentials(next)
		drop := []wire.ACL{{Identity: next.Identity, Key: next.Key, Perms: wire.PermAll}}
		if err := p.pick().SetSecurity(ctx, drop, nil); err != nil {
			return fmt.Errorf("core: rotate credentials on %s (drop old): %w", p.name, err)
		}
	}
	return nil
}
