package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/authority"
	"repro/internal/cache"
	"repro/internal/store"
)

// Session is the per-client soft state the controller keeps (§3.1):
// it is created when a client first connects (identified by its
// certificate), persists past disconnects, and expires only after a
// TTL. Asynchronous results are organized under the owning session.
type Session struct {
	ctl        *Controller
	clientKey  string // certificate key fingerprint
	createdAt  time.Time
	lastActive atomic.Int64 // unix nanos

	mu      sync.Mutex
	txs     map[uint64]*txState
	nextTx  uint64
	stopped bool
}

// asyncState is the controller-wide asynchronous machinery: one
// result window of the last 2048 operations (§4.1) and a worker pool
// draining queued operations.
type asyncState struct {
	results *cache.ResultBuffer
	queue   chan func()
	wg      sync.WaitGroup
	nextOp  atomic.Uint64
}

// ensureAsync lazily starts the async worker pool.
func (c *Controller) ensureAsync() *asyncState {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.async == nil {
		n := c.cfg.AsyncWorkers
		if n <= 0 {
			n = 32
		}
		a := &asyncState{
			results: cache.NewResultBuffer(0, c.epc, "result-buffer"),
			queue:   make(chan func(), 4096),
		}
		for i := 0; i < n; i++ {
			a.wg.Add(1)
			go func() {
				defer a.wg.Done()
				for f := range a.queue {
					f()
				}
			}()
		}
		c.async = a
	}
	return c.async
}

// Session returns (creating if needed) the session context for a
// client key fingerprint. Reconnecting clients get their existing
// context back while it lives (§3.1).
func (c *Controller) Session(clientKey string) *Session {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.sessions[clientKey]; ok {
		s.lastActive.Store(time.Now().UnixNano())
		return s
	}
	s := &Session{
		ctl:       c,
		clientKey: clientKey,
		createdAt: time.Now(),
		txs:       make(map[uint64]*txState),
	}
	s.lastActive.Store(time.Now().UnixNano())
	c.sessions[clientKey] = s
	// Each connected client costs a session object in enclave memory
	// (30 KB default, §4.2).
	c.epc.Alloc("sessions", 30<<10)
	return s
}

// ExpireSessions drops sessions idle longer than the TTL, releasing
// their enclave memory. The REST server calls this periodically.
func (c *Controller) ExpireSessions() int {
	ttl := c.cfg.SessionTTL
	if ttl <= 0 {
		ttl = 10 * time.Minute
	}
	cutoff := time.Now().Add(-ttl).UnixNano()
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for k, s := range c.sessions {
		if s.lastActive.Load() < cutoff {
			s.stop()
			delete(c.sessions, k)
			c.epc.Free("sessions", 30<<10)
			n++
		}
	}
	return n
}

// ClientKey returns the session's owning key fingerprint.
func (s *Session) ClientKey() string { return s.clientKey }

func (s *Session) touch() { s.lastActive.Store(time.Now().UnixNano()) }

func (s *Session) stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stopped = true
	for id, tx := range s.txs {
		if tx.lock != nil {
			s.ctl.locks.Finish(tx.lock)
		}
		delete(s.txs, id)
	}
}

// Put stores (or updates) an object synchronously, returning the new
// version.
func (s *Session) Put(ctx context.Context, key string, value []byte, opts PutOptions) (int64, error) {
	s.touch()
	return s.ctl.putObject(ctx, s.clientKey, key, value, opts)
}

// Get fetches an object (latest version unless opts selects one).
func (s *Session) Get(ctx context.Context, key string, opts GetOptions) ([]byte, *store.Meta, error) {
	s.touch()
	return s.ctl.getObject(ctx, s.clientKey, key, opts)
}

// Delete removes an object and its history. The v1-compatible shape
// drops the destroyed version; DeleteOp reports it.
func (s *Session) Delete(ctx context.Context, key string, opts DeleteOptions) error {
	s.touch()
	_, err := s.ctl.deleteObject(ctx, s.clientKey, key, opts)
	return err
}

// ListVersions lists the stored versions of an object.
func (s *Session) ListVersions(ctx context.Context, key string, certs []*authority.Certificate) ([]int64, error) {
	s.touch()
	return s.ctl.listVersions(ctx, s.clientKey, key, certs)
}

// PutPolicy compiles and stores a policy, returning its id.
func (s *Session) PutPolicy(ctx context.Context, src string) (string, error) {
	s.touch()
	return s.ctl.PutPolicy(ctx, src)
}

// Verify returns the integrity-checked metadata of a stored version —
// the client-facing attestation of stored objects and their policies.
func (s *Session) Verify(ctx context.Context, key string, version int64) (*store.Meta, error) {
	s.touch()
	if err := s.ctl.checkOwned(key); err != nil {
		return nil, err
	}
	return s.ctl.verifyStored(ctx, key, version)
}

// PutAsync enqueues a put and immediately returns an operation id the
// client can poll with Result (§4.1). The context is detached: the
// operation outlives the initiating request.
func (s *Session) PutAsync(key string, value []byte, opts PutOptions) uint64 {
	s.touch()
	a := s.ctl.ensureAsync()
	opID := a.nextOp.Add(1)
	a.results.Put(cache.Result{OpID: opID, Owner: s.clientKey, Key: key, Done: false})
	a.queue <- func() {
		opts := opts
		opts.Async = false
		ver, err := s.ctl.putObject(context.Background(), s.clientKey, key, value, opts)
		res := cache.Result{OpID: opID, Owner: s.clientKey, Key: key, Done: true, Version: ver}
		if err != nil {
			res.Err, res.Code = err.Error(), string(CodeFor(err))
		}
		a.results.Put(res)
	}
	return opID
}

// DeleteAsync enqueues a delete, returning an operation id.
func (s *Session) DeleteAsync(key string, opts DeleteOptions) uint64 {
	s.touch()
	a := s.ctl.ensureAsync()
	opID := a.nextOp.Add(1)
	a.results.Put(cache.Result{OpID: opID, Owner: s.clientKey, Key: key, Done: false})
	a.queue <- func() {
		opts := opts
		opts.Async = false
		ver, err := s.ctl.deleteObject(context.Background(), s.clientKey, key, opts)
		res := cache.Result{OpID: opID, Owner: s.clientKey, Key: key, Done: true, Version: ver}
		if err != nil {
			res.Err, res.Code = err.Error(), string(CodeFor(err))
		}
		a.results.Put(res)
	}
	return opID
}

// Result reports the outcome of an asynchronous operation. ok=false
// means the id is unknown, aged out of the 2048-entry window, or
// owned by a different client — in all cases the client must assume
// the request may not have executed and re-issue it (§4.1).
func (s *Session) Result(opID uint64) (cache.Result, bool) {
	s.touch()
	a := s.ctl.ensureAsync()
	r, ok := a.results.Get(opID)
	if !ok || r.Owner != s.clientKey {
		return cache.Result{}, false
	}
	return r, true
}
