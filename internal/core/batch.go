// Multi-key operations of the v2 API. BatchPut rides the atomic batch
// replication engine: the whole request's surviving writes are grouped
// into one batch stream per placement drive and fanned out to all
// drives concurrently (commitWrites), so a request touching N keys
// pays max-of-replica latency instead of N sequential round trips.
// Results are per-operation: one OpResult per submitted op, in order.
package core

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/authority"
	"repro/internal/kinetic/wire"
	"repro/internal/store"
)

// MaxBatchRequestOps caps the operations of one v2 batch request.
const MaxBatchRequestOps = 256

// BatchPutOp is one write of a v2 batch put. Keys ride as JSONKey so
// binary keys survive the JSON request body.
type BatchPutOp struct {
	Key   JSONKey `json:"key"`
	Value []byte  `json:"value"`
	// Version, when HasVersion, is the explicit next version (same
	// semantics as PutOptions).
	Version    int64 `json:"version,omitempty"`
	HasVersion bool  `json:"hasVersion,omitempty"`
	// PolicyID attaches (or changes to) a stored policy.
	PolicyID string `json:"policy,omitempty"`
}

// BatchGetResult is one read outcome of a v2 batch get.
type BatchGetResult struct {
	Key      JSONKey    `json:"key"`
	Value    []byte     `json:"value,omitempty"`
	Version  int64      `json:"version"`
	PolicyID string     `json:"policy,omitempty"`
	Err      *WireError `json:"error,omitempty"`
}

// BatchGet reads many objects, each under its own policy check, with
// per-op results in request order. Reads run concurrently (they share
// the caches and the parallel replica failover of point reads).
func (s *Session) BatchGet(ctx context.Context, keys []string, certs []*authority.Certificate) ([]BatchGetResult, error) {
	s.touch()
	if len(keys) > MaxBatchRequestOps {
		return nil, fmt.Errorf("%w: batch of %d exceeds %d ops", ErrInvalidArgument, len(keys), MaxBatchRequestOps)
	}
	results := make([]BatchGetResult, len(keys))
	var wg sync.WaitGroup
	sem := make(chan struct{}, batchParallelism(len(keys)))
	for i, key := range keys {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, key string) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i].Key = JSONKey(key)
			if err := validBatchKey(key); err != nil {
				results[i].Err = wireError(err)
				return
			}
			val, meta, err := s.ctl.getObject(ctx, s.clientKey, key, GetOptions{Certs: certs})
			if err != nil {
				results[i].Err = wireError(err)
				return
			}
			results[i].Value = val
			results[i].Version = meta.Version
			results[i].PolicyID = meta.PolicyID
		}(i, key)
	}
	wg.Wait()
	s.ctl.stats.BatchOps.Add(uint64(len(keys)))
	return results, nil
}

// BatchPut writes many objects with per-op results in request order.
// Each op is planned independently — version rules and policy checks
// that fail mark only that op — and the surviving writes commit
// together through the per-drive atomic batch streams. A replication
// failure during commit fails every surviving op (the commit is one
// fan-out), never a silent subset.
func (s *Session) BatchPut(ctx context.Context, ops []BatchPutOp, certs []*authority.Certificate) ([]OpResult, error) {
	s.touch()
	return s.ctl.batchPut(ctx, s.clientKey, ops, certs)
}

func (c *Controller) batchPut(ctx context.Context, sessionKey string, ops []BatchPutOp, certs []*authority.Certificate) ([]OpResult, error) {
	if len(ops) > MaxBatchRequestOps {
		return nil, fmt.Errorf("%w: batch of %d exceeds %d ops", ErrInvalidArgument, len(ops), MaxBatchRequestOps)
	}
	results := make([]OpResult, len(ops))

	// Take every touched stripe up front (deduplicated, ordered — see
	// lockStripes) so the whole batch plans and commits under a
	// consistent view, serialized against single-key writers.
	keys := make([]string, 0, len(ops))
	seen := make(map[string]bool, len(ops))
	for i, op := range ops {
		key := string(op.Key)
		results[i].Key = op.Key
		if err := validBatchKey(key); err != nil {
			results[i].Err = wireError(err)
			continue
		}
		if seen[key] {
			// Two writes to one key in a batch have no defined order;
			// reject the duplicate rather than guessing.
			results[i].Err = wireError(fmt.Errorf("%w: duplicate key %q in batch", ErrInvalidArgument, key))
			continue
		}
		seen[key] = true
		keys = append(keys, key)
	}
	unlock := c.lockStripes(keys)
	defer unlock()

	// Sharding gate: unowned keys fail per-op with the redirect code
	// (the router re-splits them), owned keys wait out any freeze.
	release, ownedMask, err := c.beginWriteFiltered(ctx, keys)
	if err != nil {
		return nil, err
	}
	defer release()
	owned := make(map[string]bool, len(keys))
	for i, k := range keys {
		owned[k] = ownedMask[i]
	}

	type stagedOp struct {
		idx int
		w   *replicaWrite
		rec *store.Record
	}
	var staged []stagedOp
	// Batch ops run the staging loop on one goroutine, so a single
	// policyEval carries the resolved residual across every op that
	// shares a policy.
	pe := &policyEval{}
	for i, op := range ops {
		if results[i].Err != nil {
			continue
		}
		if !owned[string(op.Key)] {
			results[i].Err = wireError(c.wrongShard(string(op.Key)))
			continue
		}
		opts := PutOptions{
			PolicyID: op.PolicyID, Version: op.Version, HasVersion: op.HasVersion, Certs: certs,
		}
		w, rec, err := c.stageWriteCtx(ctx, pe, sessionKey, string(op.Key), op.Value, opts)
		if err != nil {
			results[i].Err = wireError(err)
			continue
		}
		results[i].Version = w.next
		staged = append(staged, stagedOp{idx: i, w: w, rec: rec})
	}

	if len(staged) > 0 {
		writes := make([]*replicaWrite, len(staged))
		for i, sw := range staged {
			writes[i] = sw.w
		}
		if err := c.commitWrites(ctx, writes, wire.SyncWriteThrough); err != nil {
			// One fan-out failed; every surviving op shares its fate
			// (commitWrites already dropped the affected cache entries).
			for _, sw := range staged {
				results[sw.idx].Version = 0
				results[sw.idx].Err = wireError(err)
			}
		} else {
			var bytes uint64
			for _, sw := range staged {
				c.publishWrite(sw.rec)
				c.noteWrite(sw.rec.Meta.Key, len(sw.rec.Payload))
				bytes += uint64(len(sw.rec.Payload))
			}
			n := uint64(len(staged))
			c.stats.Puts.Add(n)
			c.stats.WriteBytes.Add(bytes)
		}
	}
	c.stats.BatchOps.Add(uint64(len(ops)))
	return results, nil
}

// validBatchKey applies the REST boundary's key rules to batch bodies
// (which bypass the URL path).
func validBatchKey(key string) error {
	if key == "" {
		return fmt.Errorf("%w: empty object key", ErrInvalidArgument)
	}
	if strings.ContainsRune(key, 0) {
		return fmt.Errorf("%w: object keys must not contain NUL", ErrInvalidArgument)
	}
	return nil
}

// batchParallelism bounds concurrent point reads of a batch get.
func batchParallelism(n int) int {
	if n < 1 {
		return 1
	}
	if n > 16 {
		return 16
	}
	return n
}
