package core

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/store"
)

// ecConfig switches a harness to the erasure-coded storage class with
// a threshold low enough that test-sized streams qualify.
func ecConfig(c *Config) {
	c.Replicas = 2
	c.EC = true
	c.ECMinBytes = 2 * streamChunkSize
}

// ecDataHome returns the home drive of data chunk idx under group.
func ecDataHome(group []int, idx int64, k int) int {
	return ecShardDrive(group, int(idx%int64(k)), idx/int64(k))
}

func TestECStreamRoundTrip(t *testing.T) {
	h := newHarness(t, 7, ecConfig)
	s := h.ctl.Session("w")
	ctx := context.Background()

	// 9.5 chunks at k=4: two full stripes, a partial third (kt=2)
	// whose final chunk is short.
	payload := streamPayload(9*streamChunkSize + streamChunkSize/2)
	if res := s.PutStream(ctx, "big", bytes.NewReader(payload), PutOptions{}); res.Err != nil {
		t.Fatalf("PutStream: %v", res.Err)
	}

	got, meta := readStream(t, s, "big", GetOptions{})
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %d bytes vs %d", len(got), len(payload))
	}
	if meta.ECK != 4 || meta.ECM != 2 || meta.Chunks != 10 {
		t.Fatalf("meta: eck=%d ecm=%d chunks=%d", meta.ECK, meta.ECM, meta.Chunks)
	}
	if meta.StorageClass() != "ec:4+2" {
		t.Fatalf("storage class %q", meta.StorageClass())
	}

	// Capacity: each data chunk lands on exactly one drive, plus m
	// parity records per stripe — 10 + 3*2 = 16 chunk records total,
	// against 20 for the 2-way replicated class.
	cstart, cend := store.ChunkKeyRange("big")
	records := 0
	for di := range h.ctl.drives {
		keys, err := h.ctl.rangeAll(ctx, h.ctl.drives[di].pick(), cstart, cend)
		if err != nil {
			t.Fatal(err)
		}
		records += len(keys)
	}
	if records != 16 {
		t.Errorf("%d chunk records across drives, want 16 (10 data + 6 parity)", records)
	}

	// Verification recomputes the whole-object hash via the stripe
	// reader; the healthy path must never have decoded.
	if _, err := s.Verify(ctx, "big", 0); err != nil {
		t.Errorf("verify: %v", err)
	}
	st := h.ctl.stats.Snapshot()
	if st.ECObjects != 1 || st.ECParityBytes == 0 {
		t.Errorf("stats: ecObjects=%d ecParityBytes=%d", st.ECObjects, st.ECParityBytes)
	}
	if st.ECDecodes != 0 {
		t.Errorf("healthy read decoded %d stripes", st.ECDecodes)
	}

	// The listing reports the class.
	page, err := s.Scan(ctx, ScanOptions{})
	if err != nil || len(page.Entries) != 1 {
		t.Fatalf("scan: %+v %v", page, err)
	}
	if page.Entries[0].Class != "ec:4+2" {
		t.Errorf("scan class %q", page.Entries[0].Class)
	}
}

func TestECStreamSingleChunkFinalStripe(t *testing.T) {
	h := newHarness(t, 6, ecConfig)
	s := h.ctl.Session("w")
	ctx := context.Background()

	// Chunks 0-3 fill stripe 0; chunk 4 is a short, lone chunk in
	// stripe 1 — its parity shrinks to the chunk's length.
	payload := streamPayload(4*streamChunkSize + 100)
	if res := s.PutStream(ctx, "lone", bytes.NewReader(payload), PutOptions{}); res.Err != nil {
		t.Fatal(res.Err)
	}
	got, meta := readStream(t, s, "lone", GetOptions{})
	if !bytes.Equal(got, payload) || meta.Chunks != 5 {
		t.Fatalf("round trip: %d bytes, %d chunks", len(got), meta.Chunks)
	}
	// Reconstructing the lone short chunk from its parity exercises
	// the virtual-zero-shard model on both ends.
	group := h.ctl.ecGroup("lone", 6)
	home := ecDataHome(group, 4, 4)
	if err := h.ctl.drives[home].pick().Delete(ctx, store.ChunkKey("lone", 0, 4), nil, true); err != nil {
		t.Fatal(err)
	}
	h.ctl.objectCache.Clear()
	got, _ = readStream(t, s, "lone", GetOptions{})
	if !bytes.Equal(got, payload) {
		t.Fatal("short lone chunk diverges after parity reconstruction")
	}
	if st := h.ctl.stats.Snapshot(); st.ECDecodes == 0 {
		t.Error("reconstruction did not decode")
	}
}

func TestECStreamBelowThresholdStaysReplicated(t *testing.T) {
	h := newHarness(t, 6, ecConfig)
	s := h.ctl.Session("w")
	ctx := context.Background()

	// Chunked, but under ECMinBytes: stays fully replicated.
	payload := streamPayload(streamChunkSize + 50)
	if res := s.PutStream(ctx, "small", bytes.NewReader(payload), PutOptions{}); res.Err != nil {
		t.Fatal(res.Err)
	}
	got, meta := readStream(t, s, "small", GetOptions{})
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch")
	}
	if meta.ECK != 0 || meta.ECM != 0 || meta.StorageClass() != "" {
		t.Fatalf("small stream erasure-coded: %+v", meta)
	}
	// Both replicas hold both chunks.
	cstart, cend := store.ChunkKeyRange("small")
	for _, di := range h.ctl.placement("small") {
		keys, err := h.ctl.rangeAll(ctx, h.ctl.drives[di].pick(), cstart, cend)
		if err != nil || len(keys) != 2 {
			t.Errorf("replica %d holds %d chunks, want 2 (%v)", di, len(keys), err)
		}
	}
}

func TestECStreamReadSurvivesDeadDrives(t *testing.T) {
	h := newHarness(t, 8, ecConfig)
	s := h.ctl.Session("w")
	ctx := context.Background()

	payload := streamPayload(8 * streamChunkSize)
	if res := s.PutStream(ctx, "kill", bytes.NewReader(payload), PutOptions{}); res.Err != nil {
		t.Fatal(res.Err)
	}
	// Lose two shard-holding drives entirely (m=2): every stripe is
	// down two shards, data or parity depending on the rotation. The
	// victims sit outside the replica window (group[0:2]) so the
	// metadata itself stays readable.
	group := h.ctl.ecGroup("kill", 6)
	for _, victim := range group[2:4] {
		if err := eraseDrive(h, victim); err != nil {
			t.Fatal(err)
		}
	}
	h.ctl.objectCache.Clear()
	got, _ := readStream(t, s, "kill", GetOptions{})
	if !bytes.Equal(got, payload) {
		t.Fatal("payload diverges with m drives lost")
	}
	if st := h.ctl.stats.Snapshot(); st.ECDecodes == 0 {
		t.Error("no stripe decoded despite lost data shards")
	}

	// Losing a third drive exceeds the code's budget: stripes missing
	// more than m shards must fail loudly, never serve wrong bytes.
	if err := eraseDrive(h, group[4]); err != nil {
		t.Fatal(err)
	}
	h.ctl.objectCache.Clear()
	_, send, err := s.GetStream(ctx, "kill", GetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := send(&bytes.Buffer{}); err == nil {
		t.Fatal("stream with m+1 drives lost served data")
	}
}

func TestECShardCorruptionCaught(t *testing.T) {
	h := newHarness(t, 6, ecConfig)
	s := h.ctl.Session("w")
	ctx := context.Background()

	payload := streamPayload(4 * streamChunkSize)
	if res := s.PutStream(ctx, "flip", bytes.NewReader(payload), PutOptions{}); res.Err != nil {
		t.Fatal(res.Err)
	}
	// Flip one byte of a shard record on its drive: the authenticated
	// chunk record rejects it, and the read heals over it from parity
	// — correct bytes, never the corrupt ones.
	group := h.ctl.ecGroup("flip", 6)
	flip := func(idx int64, home int) {
		cl := h.ctl.drives[home].pick()
		dk := store.ChunkKey("flip", 0, idx)
		blob, _, err := cl.Get(ctx, dk)
		if err != nil {
			t.Fatal(err)
		}
		blob[len(blob)/2] ^= 0x40
		if err := cl.Put(ctx, dk, blob, nil, []byte{9}, true); err != nil {
			t.Fatal(err)
		}
	}
	flip(0, ecDataHome(group, 0, 4))
	h.ctl.objectCache.Clear()
	got, _ := readStream(t, s, "flip", GetOptions{})
	if !bytes.Equal(got, payload) {
		t.Fatal("corrupt shard leaked into the stream")
	}
	if st := h.ctl.stats.Snapshot(); st.ECDecodes == 0 {
		t.Error("corruption was not detected (no decode)")
	}

	// Corrupt past the parity budget (m+1 shards of one stripe): the
	// read must fail rather than reconstruct garbage.
	flip(1, ecDataHome(group, 1, 4))
	flip(2, ecDataHome(group, 2, 4))
	h.ctl.objectCache.Clear()
	_, send, err := s.GetStream(ctx, "flip", GetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := send(&bytes.Buffer{}); err == nil {
		t.Fatal("stripe with m+1 corrupt shards served data")
	}
}

func TestECStreamOrphanSweepCollectsParity(t *testing.T) {
	h := newHarness(t, 6, func(c *Config) {
		ecConfig(c)
		c.MaxStreamBytes = 5 * streamChunkSize
	})
	s := h.ctl.Session("w")
	ctx := context.Background()

	// The upload crosses the cap after stripe 0 closed: its parity
	// shards are on-drive with data siblings that will never commit.
	// The abort sweep must collect data and parity alike.
	res := s.PutStream(ctx, "capped", bytes.NewReader(streamPayload(6*streamChunkSize)), PutOptions{})
	if res.Err == nil || res.Err.Code != CodeTooLarge {
		t.Fatalf("over-cap EC stream: %+v", res)
	}
	cstart, cend := store.ChunkKeyRange("capped")
	for di := range h.ctl.drives {
		keys, err := h.ctl.rangeAll(ctx, h.ctl.drives[di].pick(), cstart, cend)
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != 0 {
			t.Errorf("drive %d holds %d orphan shard records", di, len(keys))
		}
	}
	if _, _, err := s.Get(ctx, "capped", GetOptions{}); !errors.Is(err, ErrNotFound) {
		t.Errorf("rejected EC stream published an object: %v", err)
	}
}

func TestECStreamDeleteCollectsAllShards(t *testing.T) {
	h := newHarness(t, 7, ecConfig)
	s := h.ctl.Session("w")
	ctx := context.Background()

	payload := streamPayload(6 * streamChunkSize)
	if res := s.PutStream(ctx, "gone", bytes.NewReader(payload), PutOptions{}); res.Err != nil {
		t.Fatal(res.Err)
	}
	if err := s.Delete(ctx, "gone", DeleteOptions{}); err != nil {
		t.Fatal(err)
	}
	// No shard record — data or parity — survives on any drive; the
	// group fanout reaches beyond the replica placement.
	cstart, cend := store.ChunkKeyRange("gone")
	for di := range h.ctl.drives {
		keys, err := h.ctl.rangeAll(ctx, h.ctl.drives[di].pick(), cstart, cend)
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != 0 {
			t.Errorf("drive %d retains %d shard records after delete", di, len(keys))
		}
	}
	if _, _, err := s.GetStream(ctx, "gone", GetOptions{}); !errors.Is(err, ErrNotFound) {
		t.Errorf("get after delete: %v", err)
	}
}

func TestECRepairRebuildsLostShards(t *testing.T) {
	h := newHarness(t, 8, ecConfig)
	s := h.ctl.Session("w")
	ctx := context.Background()

	payload := streamPayload(8 * streamChunkSize) // 2 full stripes
	if res := s.PutStream(ctx, "heal", bytes.NewReader(payload), PutOptions{}); res.Err != nil {
		t.Fatal(res.Err)
	}
	group := h.ctl.ecGroup("heal", 6)
	// Victim: a group member outside the replica placement, so only
	// shard records (one per stripe) are at stake, not meta replicas.
	victim := group[5]
	if err := eraseDrive(h, victim); err != nil {
		t.Fatal(err)
	}
	h.ctl.deadMask.Store(1 << uint(victim))
	defer h.ctl.deadMask.Store(0)

	// Snapshot per-drive put counters: repair must write only to the
	// substituted home, never rewrite healthy at-home shards.
	putsBefore := make([]uint64, len(h.drives))
	for di, d := range h.drives {
		putsBefore[di] = d.Stats().Puts.Load()
	}

	report, err := s.Repair(ctx, "heal")
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if report.Restored != 2 {
		t.Errorf("restored %d shards, want 2 (one per stripe)", report.Restored)
	}
	newGroup := h.ctl.ecGroup("heal", 6)
	substitute := newGroup[5]
	if substitute == victim {
		t.Fatal("dead mask did not substitute the victim")
	}
	for di, d := range h.drives {
		wrote := d.Stats().Puts.Load() - putsBefore[di]
		if di == substitute {
			if wrote == 0 {
				t.Errorf("substitute drive %d received no rebuilt shards", di)
			}
		} else if wrote != 0 {
			t.Errorf("repair rewrote %d records on healthy drive %d", wrote, di)
		}
	}
	if st := h.ctl.stats.Snapshot(); st.ECShardRepairs != 2 {
		t.Errorf("ECShardRepairs=%d, want 2", st.ECShardRepairs)
	}

	// Readable through the rebuilt layout with the victim still dead.
	h.ctl.metaCache.Clear()
	h.ctl.objectCache.Clear()
	got, _ := readStream(t, s, "heal", GetOptions{})
	if !bytes.Equal(got, payload) {
		t.Fatal("payload diverges after shard rebuild")
	}
	// Idempotent.
	if report, err := s.Repair(ctx, "heal"); err != nil || report.Restored != 0 {
		t.Errorf("second repair: %+v %v", report, err)
	}

	// Revival: the mask clears, the group swings back to the original
	// window, and repair moves the shards home from the substitute —
	// a copy of a healthy record, not a decode.
	h.ctl.deadMask.Store(0)
	decodesBefore := h.ctl.stats.Snapshot().ECDecodes
	report, err = s.Repair(ctx, "heal")
	if err != nil || report.Restored != 2 {
		t.Fatalf("post-revival repair: %+v %v", report, err)
	}
	if d := h.ctl.stats.Snapshot().ECDecodes - decodesBefore; d != 0 {
		t.Errorf("post-revival repair decoded %d stripes; survivors should copy", d)
	}
	h.ctl.metaCache.Clear()
	h.ctl.objectCache.Clear()
	got, _ = readStream(t, s, "heal", GetOptions{})
	if !bytes.Equal(got, payload) {
		t.Fatal("payload diverges after shards moved home")
	}
}
