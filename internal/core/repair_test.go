package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/kinetic/wire"
	"repro/internal/store"
)

func TestRepairRestoresLostReplica(t *testing.T) {
	h := newHarness(t, 3, func(c *Config) { c.Replicas = 3 })
	s := h.ctl.Session("w")
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := s.Put(ctx, "k", []byte(fmt.Sprintf("v%d", i)), PutOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a replaced drive: erase one replica's contents.
	victim := store.Placement("k", 3, 3)[1]
	erase := &wire.Message{Type: wire.TErase, User: AdminIdentity}
	erase.Sign(h.ctl.adminKeyFor(h.drives[victim].Name()))
	if resp := h.drives[victim].Handle(erase); resp.Status != wire.StatusOK {
		t.Fatalf("erase victim: %v", resp.Status)
	}
	if h.drives[victim].Len() != 0 {
		t.Fatal("victim not erased")
	}

	report, err := s.Repair(ctx, "k")
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if report.Versions != 3 {
		t.Errorf("examined %d versions, want 3", report.Versions)
	}
	// 3 version records + 1 meta restored on the victim.
	if report.Restored != 4 {
		t.Errorf("restored %d records, want 4", report.Restored)
	}
	// The victim holds a full copy again.
	if h.drives[victim].Len() != 4 {
		t.Errorf("victim holds %d keys after repair, want 4", h.drives[victim].Len())
	}
	// Repair is idempotent.
	report, err = s.Repair(ctx, "k")
	if err != nil || report.Restored != 0 {
		t.Errorf("second repair: restored=%d err=%v", report.Restored, err)
	}
	// Every version still reads back intact.
	for i := int64(0); i < 3; i++ {
		val, _, err := s.Get(ctx, "k", GetOptions{Version: i, HasVersion: true})
		if err != nil || !bytes.Equal(val, []byte(fmt.Sprintf("v%d", i))) {
			t.Errorf("get v%d after repair: %q %v", i, val, err)
		}
	}
}

func TestRepairGovernedByPolicy(t *testing.T) {
	h := newHarness(t, 2, func(c *Config) { c.Replicas = 2 })
	owner := h.ctl.Session("0123")
	other := h.ctl.Session("4567")
	ctx := context.Background()
	pid, err := h.ctl.PutPolicy(ctx, "read :- sessionKeyIs(U)\nupdate :- sessionKeyIs(k'0123')")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := owner.Put(ctx, "k", []byte("v"), PutOptions{PolicyID: pid}); err != nil {
		t.Fatal(err)
	}
	if _, err := other.Repair(ctx, "k"); err == nil {
		t.Fatal("repair allowed without update permission")
	}
	if _, err := owner.Repair(ctx, "k"); err != nil {
		t.Fatalf("owner repair: %v", err)
	}
}
