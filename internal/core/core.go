// Package core implements the Pesos controller (§3): the single
// trusted layer that terminates client connections, compiles and
// enforces per-object policies, caches hot state inside the enclave,
// and persists objects on Kinetic drives with write-through
// replication. Everything security-relevant funnels through this
// package — the unified enforcement layer the paper argues reduces
// the TCB to one place.
package core

import (
	"context"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/ec"
	"repro/internal/enclave"
	"repro/internal/enclave/attest"
	"repro/internal/kinetic/kclient"
	"repro/internal/kinetic/wire"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/store"
	"repro/internal/vll"
)

// Errors surfaced to clients.
var (
	ErrDenied        = errors.New("pesos: request denied by policy")
	ErrNotFound      = errors.New("pesos: object not found")
	ErrNoSuchPolicy  = errors.New("pesos: unknown policy id")
	ErrBadVersion    = errors.New("pesos: version conflict")
	ErrClosed        = errors.New("pesos: controller closed")
	ErrInTransaction = errors.New("pesos: operation not allowed inside a transaction")
)

// DeniedError wraps ErrDenied with the interpreter's explanation.
type DeniedError struct {
	Op     string
	Key    string
	Reason string
}

// Error implements error.
func (e *DeniedError) Error() string {
	return fmt.Sprintf("pesos: %s %q denied by policy: %s", e.Op, e.Key, e.Reason)
}

// Unwrap lets errors.Is match ErrDenied.
func (e *DeniedError) Unwrap() error { return ErrDenied }

// AdminIdentity is the account the controller installs on its drives
// during takeover.
const AdminIdentity = "pesos-admin"

// LogKeyFor derives the mandatory-access-log object key paired with
// an object (§5.4). The log is an ordinary client-visible object —
// clients append intent entries to it before touching the protected
// object — so the derived name stays inside the client key space.
func LogKeyFor(key string) string { return key + ".log" }

// Config configures a controller.
type Config struct {
	// Drives lists the Kinetic drives this controller owns.
	Drives []DriveEndpoint
	// Replicas is the total number of copies per object (1 = no
	// replication, §4.5).
	Replicas int
	// Encrypt enables payload encryption (on by default in the paper;
	// the §6.2 encryption experiment turns it off).
	Encrypt bool
	// DisablePolicies turns policy enforcement off entirely — the
	// "without policy checking" baseline of §6.4.
	DisablePolicies bool
	// SerialReplication selects the legacy write path: a serial loop
	// of independent object and meta puts per replica, instead of one
	// atomic batch per replica fanned out concurrently. Kept as the
	// measured baseline for the replication benchmark. It implies
	// GroupCommit off.
	SerialReplication bool
	// GroupCommit enables the per-drive cross-client group committer
	// (see gcommit.go): concurrent logical writes coalesce into shared
	// grouped drive batches, one amortized media wait for many
	// clients. On by default in every shipped configuration (testbed,
	// daemons); false reproduces the per-op batch write path of the
	// replication engine as the measured baseline.
	GroupCommit bool
	// GroupCommitMaxOps caps the sub-operations of one merged drive
	// batch (0 or out of range selects wire.MaxBatchOps).
	GroupCommitMaxOps int
	// GroupCommitMaxBytes caps one merged batch's payload bytes
	// (0 selects store.MaxObjectSize).
	GroupCommitMaxBytes int
	// GroupCommitMaxDelay bounds the scheduler's gather window under
	// sustained concurrency; the idle path always commits immediately.
	// 0 selects 150µs; negative disables gathering entirely.
	GroupCommitMaxDelay time.Duration
	// FanoutReads selects the legacy read engine: every cache-miss
	// read asks all placement replicas concurrently (first-wins),
	// occupying every replica's media per read. The default is the
	// latency-aware hedged engine (see replicate.go); the fan-out
	// path is kept as the measured baseline for the hedge benchmark.
	FanoutReads bool
	// HedgeDelay fixes the hedged engine's delay before a second
	// replica is consulted. 0 selects the adaptive delay: ~1.25× the
	// outstanding drive's observed p95 read latency.
	HedgeDelay time.Duration
	// PolicyPartialEval enables the compiled policy fast path: rule
	// indexing plus session-bind partial evaluation, with residuals
	// cached per (policy, session, op) and reused across scan pages
	// and batches. On by default in every shipped configuration
	// (testbed, daemons); false keeps the clause-list interpreter as
	// the measured baseline for the policy benchmark.
	PolicyPartialEval bool
	// PolicyIndexedOnly selects rule indexing without partial
	// evaluation or residual caching — the benchmark's middle
	// configuration. Ignored when PolicyPartialEval is set.
	PolicyIndexedOnly bool

	// Enclave is the trusted execution environment; nil runs the
	// controller "native" (no attestation, no overhead model).
	Enclave *enclave.Enclave
	// Cost is the shielded-execution overhead model; nil derives one
	// from Enclave (native if Enclave is nil).
	Cost *enclave.CostModel

	// Attestation, when set, is used with Enclave to obtain Secrets
	// via remote attestation. Otherwise Secrets must be set directly.
	Attestation *attest.Service
	// Secrets provides runtime credentials when Attestation is nil.
	Secrets *attest.Secrets

	// TakeOver erases foreign accounts on the drives at bootstrap
	// (§3.1). Disable only for tests that pre-provision accounts.
	TakeOver bool

	// Cache budgets; zero selects the paper's defaults (§4.2):
	// 5 MB policies, 600 KB key cache, objects sized to fit EPC.
	PolicyCacheBytes   int64
	PolicyCacheEntries int
	ObjectCacheBytes   int64
	KeyCacheBytes      int64
	// DecisionCacheBytes budgets the policy-decision cache, which
	// memoizes verdicts of policies whose outcome depends only on
	// (client, operation) so the interpreter runs once per (policy,
	// client, op) instead of once per request. 0 selects 1 MB; -1
	// disables the cache.
	DecisionCacheBytes int64

	// AsyncWorkers sizes the pool executing asynchronous operations;
	// 0 selects 32.
	AsyncWorkers int

	// MaxStreamBytes caps the total size of one streamed (chunked)
	// object; 0 selects 256 MB. Inline objects stay bounded by the
	// Kinetic value limit (store.MaxObjectSize).
	MaxStreamBytes int64

	// EC enables the erasure-coded storage class: streamed objects of
	// at least ECMinBytes are striped k chunks at a time into k+m
	// shards (k data + m Reed-Solomon parity), each shard on its own
	// drive, instead of writing every chunk to every replica. Raw
	// capacity per object drops from Replicas× to (k+m)/k× while any
	// m drive losses remain survivable. Requires ECDataShards +
	// ECParityShards ≤ len(Drives).
	EC bool
	// ECDataShards (k) and ECParityShards (m) shape the Reed-Solomon
	// code; 0 selects 4 and 2.
	ECDataShards   int
	ECParityShards int
	// ECMinBytes is the streamed-object size at which the EC class
	// takes over. Smaller objects stay fully replicated — striping a
	// small hot object across k+m drives buys little capacity and
	// costs k drive round trips per read. 0 selects 4 MB.
	ECMinBytes int64

	// SessionTTL expires idle session contexts; 0 selects 10 minutes.
	SessionTTL time.Duration

	// DetectorInterval runs the drive-failure detector on a ticker:
	// each tick probes every drive and advances its
	// healthy → suspect → dead state machine (see detector.go). 0
	// disables the background loop; DetectorTick remains callable.
	DetectorInterval time.Duration
	// DetectorProbeTimeout bounds one detector probe; 0 selects 1s.
	DetectorProbeTimeout time.Duration
	// DetectorSuspectAfter / DetectorDeadAfter are the consecutive
	// failed-probe thresholds for the suspect and dead transitions
	// (defaults 2 and 4); DetectorReviveAfter is the consecutive
	// successes a dead drive needs to rejoin (default 3).
	DetectorSuspectAfter int
	DetectorDeadAfter    int
	DetectorReviveAfter  int

	// SweepInterval runs the continuous anti-entropy sweeper on a
	// ticker (see sweeper.go); each tick converges a bounded window of
	// the keyspace and resumes from a cursor. 0 disables the loop;
	// SweepTick remains callable.
	SweepInterval time.Duration
	// SweepKeysPerTick bounds the keys examined per tick (default 256).
	SweepKeysPerTick int
	// SweepBytesPerTick bounds the record bytes rewritten per tick
	// (default 4 MB); a tick stops early once exceeded.
	SweepBytesPerTick int64

	// Shard, when set, runs the controller as one shard of a multi-
	// controller cluster: it owns only the given hash ranges of the
	// keyspace and answers operations on foreign keys with
	// ErrWrongShard (see shard.go). Nil runs the controller unsharded.
	Shard *ShardInfo
	// ClusterMapDoc is the signed cluster shard map document served at
	// /v1/cluster/map for routers; opaque to core, verified and
	// updated by the cluster coordinator (internal/cluster).
	ClusterMapDoc []byte

	// Standby boots the controller as a hot standby for its shard: it
	// dials the shard's drives with the CredentialEpoch-derived admin
	// accounts (never the factory credentials, and never taking over),
	// answers every client operation with ErrWrongShard, and waits for
	// Activate to promote it after it wins the shard's lease
	// (internal/cluster/ha.go). Requires Shard.
	Standby bool
	// CredentialEpoch is the epoch whose derived admin accounts are
	// current on the drives (the cluster map's CredEpoch) — the
	// accounts a standby bootstrap authenticates with. 0 means the
	// factory bootstrap accounts are still installed.
	CredentialEpoch uint64

	// Clock supplies trusted time for policy freshness (§5.2); nil
	// uses the SGX-SDK-equivalent monotonic system time.
	Clock func() time.Time

	// DisableObs is the observability kill switch: no metrics registry,
	// no tracer, no audit log — the overhead baseline the obs benchmark
	// measures against. Instrumented code is nil-safe throughout, so
	// the switch costs no branches at the call sites.
	DisableObs bool
	// Registry receives the controller's metrics; nil (with obs
	// enabled) creates a private one, exposed via Registry().
	Registry *obs.Registry
	// TraceBuffer sizes the completed-trace ring backing
	// GET /v1/trace/{id}; 0 selects 1024.
	TraceBuffer int
	// SlowOpThreshold dumps the span tree of requests at or over this
	// duration to the log; 0 selects 250ms, negative disables.
	SlowOpThreshold time.Duration
	// TraceSample head-samples self-initiated traces: 1-in-N requests
	// arriving without an X-Pesos-Trace id get one (0 or 1 = all).
	// Requests carrying an explicit id are always traced.
	TraceSample int
	// AuditDir enables the sealed audit decision log in this directory
	// (empty disables). Records every policy DENY plus sampled ALLOWs,
	// AEAD-sealed and hash-chained; see internal/obs/audit.go.
	AuditDir string
	// AuditKey overrides the sealing key; zero derives it from the
	// attested object key, so the key never exists outside the enclave.
	AuditKey [32]byte
	// AuditSampleAllow seals one in N ALLOW decisions (0 = denies only).
	AuditSampleAllow int
	// AuditMaxSegmentBytes rotates audit segments at this size (0 = 1 MB).
	AuditMaxSegmentBytes int64
}

// Controller is one Pesos instance.
type Controller struct {
	cfg     Config
	cost    *enclave.CostModel
	epc     *enclave.EPC
	codec   *store.Codec
	secrets *attest.Secrets
	clock   func() time.Time

	drives []*drivePool
	// gcommit is the group-commit scheduler (one queue per drive, one
	// generation clock); nil when group commit is off (see gcommit.go).
	gcommit *groupScheduler

	// detector is the drive-failure detector; deadMask is its
	// published verdict (bit i set = drive i dead), the single atomic
	// word placement() consults on every operation.
	detector *driveDetector
	deadMask atomic.Uint64
	// sweeper is the continuous anti-entropy sweeper's resumable state.
	sweeper *sweeperState

	// Background maintenance loop lifecycle (see startMaintenance).
	bgMu     sync.Mutex
	bgCancel context.CancelFunc
	bgWG     sync.WaitGroup

	policyCache *cache.Cache[string, *policy.Program]
	objectCache *cache.Cache[string, *store.Record]
	metaCache   *cache.Cache[string, *store.Meta]
	// decisionCache memoizes session-static policy verdicts (nil when
	// disabled); see checkPolicy.
	decisionCache *cache.Cache[string, cachedDecision]
	// residualCache memoizes session-bound partial evaluations keyed
	// like the decision cache (nil unless PolicyPartialEval); it is
	// invalidated on the same PutPolicy path.
	residualCache *cache.Cache[string, *policy.Residual]

	// Singleflight layers in front of the caches: N concurrent misses
	// on one hot key cost a single drive round trip (see cache.Flight).
	metaFlight   *cache.Flight[string, *store.Meta]
	objectFlight *cache.Flight[string, *store.Record]
	policyFlight *cache.Flight[string, *policy.Program]

	// scanTokens seals v2 pagination tokens (see scan.go).
	scanTokens cipher.AEAD

	// streamLocks serialize streamed uploads per key (see stream.go).
	streamLocks keyedLocks

	// ecCode is the Reed-Solomon code for the configured
	// (ECDataShards, ECParityShards) pair; nil when EC is off. Reads
	// of objects written under a different historical (k, m) build a
	// code on the fly (see ecCodeFor).
	ecCode *ec.Code

	// shard is the cluster sharding state; nil when unsharded.
	shard *shardState

	locks *vll.Manager
	async *asyncState

	// writeLocks serialize mutations per key stripe. The controller
	// has exclusive control of its drives (§3.1), so in-process
	// serialization is authoritative; the drives' compare-and-swap
	// versions remain as a backstop against misconfigured deployments
	// sharing drives between controllers.
	//
	// Sizing: a stripe is held across the whole drive commit — multiple
	// milliseconds on spinning media — so a collision convoys an
	// unrelated key behind it for a full commit cycle. 4096 stripes
	// (32 KB of mutexes) make cross-key collisions rare at hundreds of
	// concurrent writers where 256 measurably serialized hot stripes.
	writeLocks [writeStripes]sync.Mutex

	mu       sync.Mutex
	sessions map[string]*Session
	closed   bool

	stats Stats
	// load is the per-range load histogram (see load.go).
	load loadState

	// Observability state (nil across the board under DisableObs; all
	// uses are nil-safe).
	registry   *obs.Registry
	tracer     *obs.Tracer
	traceStore *obs.TraceStore
	audit      *obs.AuditLog
	// opHist records per-operation request latency for /metrics.
	opHist map[string]*obs.Histogram
}

// Stats aggregates controller activity counters. Every field is a
// lock-free obs.Counter — one atomic word — so the hot paths pay a
// single uncontended atomic add instead of the former shared mutex,
// and the same words back both /v1/status and the Prometheus scrape
// (no dual counting).
type Stats struct {
	Puts                obs.Counter
	Gets                obs.Counter
	Deletes             obs.Counter
	Scans               obs.Counter // v2 scan pages served
	ScanFiltered        obs.Counter // scan entries suppressed by policy
	BatchOps            obs.Counter // operations carried by v2 batch requests
	Streams             obs.Counter // chunked streamed reads + writes
	PolicyChecks        obs.Counter
	PolicyDenials       obs.Counter
	TxCommits           obs.Counter
	TxAborts            obs.Counter
	ReadHedges          obs.Counter // hedge requests fired by the read engine
	CoalescedReads      obs.Counter // cache misses served by another miss's flight
	DecisionHits        obs.Counter // policy checks served from the decision cache
	PolicyEvals         obs.Counter // clause-machine runs (checks not decided statically)
	ResidualHits        obs.Counter // checks served by a cached or page-reused residual
	IndexSkippedClauses obs.Counter // clauses pruned by the rule index / residuals
	WrongShard          obs.Counter // operations redirected to another shard
	GroupBatches        obs.Counter // drive batches shipped by the group scheduler (merged or not)
	GroupedWrites       obs.Counter // write groups that shared a merged drive batch
	TrailingFlushes     obs.Counter // idle destages of write-back batches
	ReadBytes           obs.Counter // payload bytes served to readers
	WriteBytes          obs.Counter // payload bytes accepted from writers
	Repairs             obs.Counter // objects re-replicated by repair (on-demand or sweep)
	RepairSweeps        obs.Counter // full anti-entropy keyspace passes completed
	RepairBytes         obs.Counter // record bytes rewritten by repair / re-replication
	SweepTicks          obs.Counter // incremental sweeper ticks executed
	DriveDeaths         obs.Counter // detector transitions into the dead state
	DriveRevives        obs.Counter // dead drives revived by the detector
	AuditDropped        obs.Counter // audit records lost to a saturated queue
	ECObjects           obs.Counter // streamed objects stored erasure-coded
	ECParityBytes       obs.Counter // parity shard bytes written (the EC capacity overhead)
	ECDecodes           obs.Counter // stripes served through a parity reconstruction
	ECShardRepairs      obs.Counter // shards restored by repair (P2P copy or decode)
}

// StatsSnapshot is a point-in-time copy of the counters, field for
// field. Reading is not atomic across fields (each word individually
// exact) — the standard monitoring trade.
type StatsSnapshot struct {
	Puts                uint64
	Gets                uint64
	Deletes             uint64
	Scans               uint64
	ScanFiltered        uint64
	BatchOps            uint64
	Streams             uint64
	PolicyChecks        uint64
	PolicyDenials       uint64
	TxCommits           uint64
	TxAborts            uint64
	ReadHedges          uint64
	CoalescedReads      uint64
	DecisionHits        uint64
	PolicyEvals         uint64
	ResidualHits        uint64
	IndexSkippedClauses uint64
	WrongShard          uint64
	GroupBatches        uint64
	GroupedWrites       uint64
	TrailingFlushes     uint64
	ReadBytes           uint64
	WriteBytes          uint64
	Repairs             uint64
	RepairSweeps        uint64
	RepairBytes         uint64
	SweepTicks          uint64
	DriveDeaths         uint64
	DriveRevives        uint64
	AuditDropped        uint64
	ECObjects           uint64
	ECParityBytes       uint64
	ECDecodes           uint64
	ECShardRepairs      uint64
}

// Snapshot returns a copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Puts: s.Puts.Load(), Gets: s.Gets.Load(), Deletes: s.Deletes.Load(),
		Scans: s.Scans.Load(), ScanFiltered: s.ScanFiltered.Load(),
		BatchOps: s.BatchOps.Load(), Streams: s.Streams.Load(),
		PolicyChecks: s.PolicyChecks.Load(), PolicyDenials: s.PolicyDenials.Load(),
		TxCommits: s.TxCommits.Load(), TxAborts: s.TxAborts.Load(),
		ReadHedges: s.ReadHedges.Load(), CoalescedReads: s.CoalescedReads.Load(),
		DecisionHits: s.DecisionHits.Load(), PolicyEvals: s.PolicyEvals.Load(),
		ResidualHits: s.ResidualHits.Load(), IndexSkippedClauses: s.IndexSkippedClauses.Load(),
		WrongShard:   s.WrongShard.Load(),
		GroupBatches: s.GroupBatches.Load(), GroupedWrites: s.GroupedWrites.Load(),
		TrailingFlushes: s.TrailingFlushes.Load(),
		ReadBytes:       s.ReadBytes.Load(), WriteBytes: s.WriteBytes.Load(),
		Repairs: s.Repairs.Load(), RepairSweeps: s.RepairSweeps.Load(),
		RepairBytes: s.RepairBytes.Load(), SweepTicks: s.SweepTicks.Load(),
		DriveDeaths: s.DriveDeaths.Load(), DriveRevives: s.DriveRevives.Load(),
		AuditDropped: s.AuditDropped.Load(),
		ECObjects:    s.ECObjects.Load(), ECParityBytes: s.ECParityBytes.Load(),
		ECDecodes: s.ECDecodes.Load(), ECShardRepairs: s.ECShardRepairs.Load(),
	}
}

// New bootstraps a controller: attest (when configured), connect to
// every drive, take exclusive control, and initialize caches sized
// against the EPC budget.
func New(ctx context.Context, cfg Config) (*Controller, error) {
	if len(cfg.Drives) == 0 {
		return nil, errors.New("core: no drives configured")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > len(cfg.Drives) {
		return nil, fmt.Errorf("core: %d replicas need at least that many drives, have %d",
			cfg.Replicas, len(cfg.Drives))
	}
	if cfg.EC {
		if cfg.ECDataShards == 0 {
			cfg.ECDataShards = 4
		}
		if cfg.ECParityShards == 0 {
			cfg.ECParityShards = 2
		}
		if cfg.ECMinBytes == 0 {
			cfg.ECMinBytes = 4 << 20
		}
		if cfg.ECDataShards+cfg.ECParityShards > len(cfg.Drives) {
			return nil, fmt.Errorf("core: ec %d+%d needs %d drives, have %d",
				cfg.ECDataShards, cfg.ECParityShards,
				cfg.ECDataShards+cfg.ECParityShards, len(cfg.Drives))
		}
	}

	if cfg.Standby && cfg.Shard == nil {
		return nil, errors.New("core: standby mode requires a shard configuration")
	}

	c := &Controller{cfg: cfg, sessions: make(map[string]*Session)}
	if cfg.Shard != nil {
		info := *cfg.Shard
		info.Ranges = NormalizeRanges(info.Ranges)
		c.shard = newShardState(info, cfg.ClusterMapDoc, cfg.Standby)
	}

	c.clock = cfg.Clock
	if c.clock == nil {
		c.clock = time.Now
	}

	// Step 1: obtain runtime secrets — via remote attestation when an
	// attestation service is configured (§3.1 bootstrap), directly
	// otherwise.
	switch {
	case cfg.Attestation != nil && cfg.Enclave != nil:
		secrets, err := cfg.Attestation.AttestEnclave(cfg.Enclave)
		if err != nil {
			return nil, fmt.Errorf("core: attestation failed: %w", err)
		}
		c.secrets = secrets
	case cfg.Secrets != nil:
		c.secrets = cfg.Secrets
	default:
		return nil, errors.New("core: need either Attestation+Enclave or Secrets")
	}

	// Step 2: overhead model and EPC accounting.
	if cfg.Enclave != nil {
		c.epc = cfg.Enclave.EPC()
	} else {
		c.epc = enclave.NewEPC(0)
	}
	c.cost = cfg.Cost
	if c.cost == nil {
		c.cost = enclave.DefaultCostModel(cfg.Enclave != nil, c.epc)
	}

	var err error
	if c.codec, err = store.NewCodec(c.secrets.ObjectKey, cfg.Encrypt); err != nil {
		return nil, err
	}
	if cfg.EC {
		if c.ecCode, err = ec.New(cfg.ECDataShards, cfg.ECParityShards); err != nil {
			return nil, err
		}
	}
	if err := c.initScanTokens(); err != nil {
		return nil, err
	}

	// Step 3: connect to the drives with the provisioned factory
	// credentials and take exclusive control.
	if err := c.connectDrives(ctx); err != nil {
		return nil, err
	}
	if cfg.GroupCommit && !cfg.SerialReplication {
		c.startCommitters()
	}

	// Step 4: caches, sized to the paper's defaults within the EPC.
	pcBytes := cfg.PolicyCacheBytes
	if pcBytes == 0 {
		pcBytes = 5 << 20
	}
	ocBytes := cfg.ObjectCacheBytes
	if ocBytes == 0 {
		ocBytes = 48 << 20
	}
	kcBytes := cfg.KeyCacheBytes
	if kcBytes == 0 {
		kcBytes = 600 << 10
	}
	c.policyCache = cache.New[string, *policy.Program](cache.Config[*policy.Program]{
		BudgetBytes: pcBytes,
		MaxEntries:  cfg.PolicyCacheEntries,
		SizeOf:      func(p *policy.Program) int64 { return programSize(p) },
		EPC:         c.epc, Label: "policy-cache",
	})
	c.objectCache = cache.New[string, *store.Record](cache.Config[*store.Record]{
		BudgetBytes: ocBytes,
		SizeOf:      func(r *store.Record) int64 { return int64(len(r.Payload)) + 128 },
		EPC:         c.epc, Label: "object-cache",
	})
	c.metaCache = cache.New[string, *store.Meta](cache.Config[*store.Meta]{
		BudgetBytes: kcBytes,
		SizeOf:      func(m *store.Meta) int64 { return int64(len(m.Key)+len(m.PolicyID)) + 96 },
		EPC:         c.epc, Label: "key-cache",
	})
	if cfg.DecisionCacheBytes >= 0 {
		dcBytes := cfg.DecisionCacheBytes
		if dcBytes == 0 {
			dcBytes = 1 << 20
		}
		c.decisionCache = cache.New[string, cachedDecision](cache.Config[cachedDecision]{
			BudgetBytes: dcBytes,
			// Entries are dominated by their key (policy id + client
			// fingerprint), which the sizer cannot see; charge a flat
			// estimate plus the denial reason.
			SizeOf: func(d cachedDecision) int64 { return int64(len(d.reason)) + 192 },
			EPC:    c.epc, Label: "decision-cache",
		})
		if cfg.PolicyPartialEval {
			c.residualCache = cache.New[string, *policy.Residual](cache.Config[*policy.Residual]{
				BudgetBytes: dcBytes,
				// Charge the residual's own estimate plus the key (policy
				// id + client fingerprint), which the sizer cannot see.
				SizeOf: func(r *policy.Residual) int64 { return r.SizeEstimate() + 160 },
				EPC:    c.epc, Label: "residual-cache",
			})
		}
	}
	c.metaFlight = cache.NewFlight[string, *store.Meta]()
	c.objectFlight = cache.NewFlight[string, *store.Record]()
	c.policyFlight = cache.NewFlight[string, *policy.Program]()

	c.locks = vll.NewManager()

	// Step 5: failure detection and anti-entropy. The state always
	// exists (DetectorTick / SweepTick are callable on demand); the
	// background loops start only with intervals configured, and for a
	// standby only once Activate promotes it — a standby must not
	// write to drives it does not own.
	c.detector = newDriveDetector(c)
	c.sweeper = newSweeperState()
	if !cfg.Standby {
		c.startMaintenance()
	}

	// Step 6: observability — metrics registry, tracer and the sealed
	// audit decision log (all skipped under the DisableObs kill switch).
	if err := c.initObs(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// cachedDecision is one memoized policy verdict for a session-static
// (policy, client, operation) triple.
type cachedDecision struct {
	allowed bool
	reason  string // denial explanation, preserved for the client error
}

// connectDrives dials every drive and, unless disabled, performs the
// exclusive takeover: replace all accounts with a single Pesos admin
// account derived from the attested admin seed (§3.1).
func (c *Controller) connectDrives(ctx context.Context) error {
	if len(c.secrets.Drives) != len(c.cfg.Drives) {
		return fmt.Errorf("core: secrets cover %d drives, config has %d",
			len(c.secrets.Drives), len(c.cfg.Drives))
	}
	for i, ep := range c.cfg.Drives {
		cred := c.secrets.Drives[i]
		dialCred := kclient.Credentials{Identity: cred.Identity, Key: cred.Key}
		if c.cfg.Standby {
			// A standby never holds factory credentials and never takes
			// over: it authenticates with the epoch-derived admin account
			// the active owner installed. Dialing does not authenticate
			// (HMACs are per-message), so bootstrap succeeds even if the
			// epoch advances before the first request.
			dialCred = kclient.Credentials{
				Identity: adminIdentityForEpoch(c.cfg.CredentialEpoch),
				Key:      c.adminKeyForEpoch(ep.Name, c.cfg.CredentialEpoch),
			}
		}
		pool, err := dialPool(ctx, ep, dialCred)
		if err != nil {
			c.closeDrives()
			return err
		}
		if c.cfg.TakeOver && !c.cfg.Standby {
			adminKey := c.adminKeyFor(ep.Name)
			acl := wire.ACL{Identity: AdminIdentity, Key: adminKey, Perms: wire.PermAll}
			if err := pool.pick().SetSecurity(ctx, []wire.ACL{acl}, nil); err != nil {
				pool.close()
				c.closeDrives()
				return fmt.Errorf("core: takeover of drive %s: %w", ep.Name, err)
			}
			pool.setCredentials(kclient.Credentials{Identity: AdminIdentity, Key: adminKey})
		}
		c.drives = append(c.drives, pool)
	}
	return nil
}

// adminKeyFor derives the per-drive admin HMAC secret from the
// attestation-provisioned seed, so no long-term drive secret ever
// exists outside the enclave.
func (c *Controller) adminKeyFor(driveName string) []byte {
	mac := hmac.New(sha256.New, c.secrets.AdminSeed[:])
	mac.Write([]byte("drive-admin:"))
	mac.Write([]byte(driveName))
	return mac.Sum(nil)
}

// closeDrives closes every pool connection. The drive table itself
// stays in place: writers that raced past the closed check still
// resolve their pools and fail with the connection's ErrClosed
// instead of tearing a nil slice out from under a fan-out.
func (c *Controller) closeDrives() {
	for _, p := range c.drives {
		p.close()
	}
}

// Stats returns the controller's counters.
func (c *Controller) Stats() *Stats { return &c.stats }

// EPC exposes the enclave memory accountant (for tests and GETLOG-
// style introspection).
func (c *Controller) EPC() *enclave.EPC { return c.epc }

// Cost exposes the overhead model.
func (c *Controller) Cost() *enclave.CostModel { return c.cost }

// CacheStats reports hit/miss/eviction counters of the controller
// caches (including the policy-decision cache when enabled).
func (c *Controller) CacheStats() map[string][3]uint64 {
	out := make(map[string][3]uint64, 4)
	h, m, e := c.policyCache.Stats()
	out["policy"] = [3]uint64{h, m, e}
	h, m, e = c.objectCache.Stats()
	out["object"] = [3]uint64{h, m, e}
	h, m, e = c.metaCache.Stats()
	out["meta"] = [3]uint64{h, m, e}
	if c.decisionCache != nil {
		h, m, e = c.decisionCache.Stats()
		out["decision"] = [3]uint64{h, m, e}
	}
	if c.residualCache != nil {
		h, m, e = c.residualCache.Stats()
		out["residual"] = [3]uint64{h, m, e}
	}
	return out
}

// DriveLatency is one drive pool's observed read-latency estimate,
// the signal the hedged read engine orders replicas by.
type DriveLatency struct {
	Name    string
	EWMA    time.Duration
	P95     time.Duration
	Samples uint64
}

// DriveLatencies reports the per-drive read-latency estimates.
func (c *Controller) DriveLatencies() []DriveLatency {
	out := make([]DriveLatency, len(c.drives))
	for i, p := range c.drives {
		e, p95, n := p.latency()
		out[i] = DriveLatency{Name: p.name, EWMA: e, P95: p95, Samples: n}
	}
	return out
}

// DropCaches empties the meta, object, policy and decision caches.
// Benchmarks and tests use it to force cache-miss reads; it is safe
// (though pointless) on a live controller — drive state is untouched.
func (c *Controller) DropCaches() {
	c.metaCache.Clear()
	c.objectCache.Clear()
	c.policyCache.Clear()
	if c.decisionCache != nil {
		c.decisionCache.Clear()
	}
	if c.residualCache != nil {
		c.residualCache.Clear()
	}
}

// Close shuts the controller down: sessions stop accepting work,
// drive connections close.
func (c *Controller) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.stopMaintenance()
	c.mu.Lock()
	sessions := make([]*Session, 0, len(c.sessions))
	for _, s := range c.sessions {
		sessions = append(sessions, s)
	}
	c.mu.Unlock()
	for _, s := range sessions {
		s.stop()
	}
	c.mu.Lock()
	async := c.async
	c.async = nil
	c.mu.Unlock()
	if async != nil {
		close(async.queue)
		async.wg.Wait()
	}
	// Committer shutdown is two-phase: reject queued groups first,
	// close the drive connections (which unblocks any in-flight merged
	// batch), then wait for the scheduler goroutines to exit.
	c.stopCommitters(false)
	c.mu.Lock()
	c.closeDrives()
	c.mu.Unlock()
	c.stopCommitters(true)
	c.audit.Close()
	return nil
}

// writeStripes is the mutation-lock stripe count (power of two).
const writeStripes = 4096

// stripeIndex returns the mutation lock stripe a key hashes to.
func stripeIndex(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h & (writeStripes - 1))
}

// writeLock returns the mutation lock stripe for a key.
func (c *Controller) writeLock(key string) *sync.Mutex {
	return &c.writeLocks[stripeIndex(key)]
}

// programSize estimates a compiled policy's resident footprint.
func programSize(p *policy.Program) int64 {
	data, err := p.Marshal()
	if err != nil {
		return 256
	}
	return int64(len(data)) + 64
}

// policyID derives the content-addressed identifier of a compiled
// policy: the hex policy hash. Identical policies share an id, which
// is what lets one policy serve many objects (1:M, §3).
func policyID(p *policy.Program) string {
	h := p.Hash()
	return hex.EncodeToString(h[:])
}
