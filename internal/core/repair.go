package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/kinetic/kclient"
	"repro/internal/policy/lang"
	"repro/internal/store"
)

// RepairReport summarizes one object's replica repair.
type RepairReport struct {
	Key string
	// Versions is the number of object versions examined.
	Versions int
	// Restored counts records rewritten onto drives that were missing
	// them (or holding corrupt copies).
	Restored int
	// RestoredBytes totals the payload bytes of rewritten records —
	// the re-replication traffic this repair moved.
	RestoredBytes int64
}

// repairObject re-establishes the replication invariant for one key
// (§4.5): after a drive is replaced or lost writes are detected, every
// placement drive must hold every version record plus the metadata.
// Healthy copies are read (with integrity verification through the
// codec), missing or corrupt ones rewritten. Governed by the object's
// update permission, since repair rewrites records.
func (c *Controller) repairObject(ctx context.Context, sessionKey, key string) (*RepairReport, error) {
	lock := c.writeLock(key)
	lock.Lock()
	defer lock.Unlock()

	placement := c.placement(key)
	meta, err := c.loadMetaNewest(ctx, key, placement)
	if err != nil {
		return nil, err
	}
	if err := c.checkPolicy(ctx, lang.PermUpdate, sessionKey, key, meta, nil, nil); err != nil {
		return nil, err
	}
	return c.repairRecords(ctx, key, meta, placement)
}

// repairRecords converges one key's replicas to the newest surviving
// state. Callers hold the key's write lock and have settled the
// policy question (client repairs are permission-gated; the
// anti-entropy sweep is an internal maintenance path).
func (c *Controller) repairRecords(ctx context.Context, key string, meta *store.Meta, placement []int) (*RepairReport, error) {
	report := &RepairReport{Key: key}
	metaRec := meta.Marshal()

	// Enumerate the versions any replica still holds instead of
	// probing every historical version 0..meta.Version on every drive:
	// a long-lived hot key with thousands of superseded (and long
	// deleted) versions would otherwise make each repair
	// O(version-history × drives). Versions no replica holds are
	// unrepairable either way — reads of them report not-found, the
	// same before and after repair.
	for _, v := range c.replicaVersions(ctx, key, meta.Version, placement) {
		// Find one healthy copy of this version.
		blob, found := c.healthyRecord(ctx, key, v, placement)
		if !found {
			continue
		}
		report.Versions++
		for _, di := range placement {
			cl := c.drives[di].pick()
			c.chargeDriveIO(0)
			cur, _, err := cl.Get(ctx, store.ObjectKey(key, v))
			healthy := err == nil && c.recordHealthy(cur)
			if healthy {
				continue
			}
			c.chargeDriveIO(len(blob))
			if err := cl.Put(ctx, store.ObjectKey(key, v), blob, nil, encodeVer(v), true); err != nil {
				return report, fmt.Errorf("core: repair %q v%d on %s: %w", key, v, c.drives[di].name, err)
			}
			report.Restored++
			report.RestoredBytes += int64(len(blob))
		}
		// Streamed versions: the record is a chunk stub; its chunk
		// records need the same convergence. Erasure-coded versions
		// converge per shard home instead of per replica.
		if rec, err := c.codec.DecodeRecord(blob); err == nil && rec.Meta.Chunks > 0 {
			if rec.Meta.ECK > 0 {
				if err := c.repairStripes(ctx, key, &rec.Meta, report); err != nil {
					return report, err
				}
			} else if err := c.repairChunks(ctx, key, v, rec.Meta.Chunks, placement, report); err != nil {
				return report, err
			}
		}
	}
	// Restore metadata replicas.
	for _, di := range placement {
		cl := c.drives[di].pick()
		c.chargeDriveIO(0)
		cur, _, err := cl.Get(ctx, store.MetaKey(key))
		if err == nil {
			if m, merr := store.UnmarshalMeta(cur); merr == nil && m.Version == meta.Version {
				continue
			}
		}
		c.chargeDriveIO(len(metaRec))
		if err := cl.Put(ctx, store.MetaKey(key), metaRec, nil, encodeVer(meta.Version), true); err != nil {
			return report, fmt.Errorf("core: repair meta %q on %s: %w", key, c.drives[di].name, err)
		}
		report.Restored++
		report.RestoredBytes += int64(len(metaRec))
	}
	if report.Restored > 0 {
		c.stats.Repairs.Inc()
		c.stats.RepairBytes.Add(uint64(report.RestoredBytes))
	}
	return report, nil
}

// replicaVersions returns the sorted union of object-record versions
// (≤ maxVer — records beyond the newest committed metadata are
// uncommitted leftovers) still present on any placement replica, via
// paginated key-range enumeration: cost scales with surviving
// records, not version history. meta.Version is always included so
// the newest version is checked even when only the metadata survived.
func (c *Controller) replicaVersions(ctx context.Context, key string, maxVer int64, placement []int) []int64 {
	seen := map[int64]bool{maxVer: true}
	_, end := store.ObjectKeyRange(key)
	for _, di := range placement {
		cl := c.drives[di].pick()
		next := int64(0)
		for {
			c.chargeDriveIO(0)
			dks, err := cl.GetKeyRange(ctx, store.ObjectKey(key, next), end, true, false, driveRangeCap)
			if err != nil || len(dks) == 0 {
				break
			}
			last := int64(-1)
			for _, dk := range dks {
				if _, v, err := store.VersionFromObjectKey(dk); err == nil {
					if v <= maxVer {
						seen[v] = true
					}
					last = v
				}
			}
			if len(dks) < driveRangeCap || last < 0 || last >= maxVer {
				break
			}
			next = last + 1
		}
	}
	out := make([]int64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SweepReport summarizes one anti-entropy sweep.
type SweepReport struct {
	// Keys is the number of objects examined.
	Keys int
	// Restored is the total number of records rewritten.
	Restored int
	// Failed counts objects whose repair errored (the sweep continues
	// past them; the next interval retries).
	Failed int
}

// RepairSweep is the background anti-entropy pass: it enumerates
// every object stored under this controller's owned ranges (the whole
// keyspace when unsharded) and re-establishes the replication
// invariant for each — the same per-key convergence as Session.Repair
// but as an internal maintenance path with no policy gate, since no
// client is acting. Per-object failures are counted, not fatal: a
// degraded drive must not stop the sweep from converging everything
// else.
func (c *Controller) RepairSweep(ctx context.Context) (*SweepReport, error) {
	ranges := c.ownedRangesForLoad()
	report := &SweepReport{}
	for _, r := range ranges {
		keys, err := c.keysInRange(ctx, r)
		if err != nil {
			return report, fmt.Errorf("core: repair sweep enumerate %v: %w", r, err)
		}
		for _, key := range keys {
			if err := ctx.Err(); err != nil {
				return report, err
			}
			rep, err := c.sweepKey(ctx, key)
			report.Keys++
			if err != nil {
				report.Failed++
				continue
			}
			report.Restored += rep.Restored
		}
	}
	c.stats.RepairSweeps.Inc()
	return report, nil
}

// sweepKey repairs one key under its write lock (internal path, no
// policy check).
func (c *Controller) sweepKey(ctx context.Context, key string) (*RepairReport, error) {
	lock := c.writeLock(key)
	lock.Lock()
	defer lock.Unlock()
	placement := c.placement(key)
	meta, err := c.loadMetaNewest(ctx, key, placement)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return &RepairReport{Key: key}, nil // deleted mid-sweep
		}
		return nil, err
	}
	return c.repairRecords(ctx, key, meta, placement)
}

// loadMetaNewest reads every replica's metadata record and returns the
// highest version found, updating the cache. Repair must converge to
// the newest surviving copy: trusting the cache or whichever replica
// answers first could elect a degraded replica's stale metadata and
// roll healthy replicas back.
func (c *Controller) loadMetaNewest(ctx context.Context, key string, placement []int) (*store.Meta, error) {
	var newest *store.Meta
	var sawNotFound bool
	var lastErr error
	for _, di := range placement {
		cl := c.drives[di].pick()
		c.chargeDriveIO(0)
		val, _, err := cl.Get(ctx, store.MetaKey(key))
		if errors.Is(err, kclient.ErrNotFound) {
			sawNotFound = true
			continue
		}
		if err != nil {
			lastErr = err
			continue
		}
		m, err := store.UnmarshalMeta(val)
		if err != nil {
			continue // corrupt copy; another replica may be healthy
		}
		if newest == nil || m.Version > newest.Version {
			newest = m
		}
	}
	if newest == nil {
		if sawNotFound {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
		}
		return nil, fmt.Errorf("core: all replicas failed reading meta %q: %w", key, lastErr)
	}
	c.metaCache.Put(key, newest)
	return newest, nil
}

// healthyRecord fetches one verifiable copy of a version record.
func (c *Controller) healthyRecord(ctx context.Context, key string, v int64, placement []int) ([]byte, bool) {
	for _, di := range placement {
		cl := c.drives[di].pick()
		c.chargeDriveIO(0)
		blob, _, err := cl.Get(ctx, store.ObjectKey(key, v))
		if err != nil {
			continue
		}
		if c.recordHealthy(blob) {
			return blob, true
		}
	}
	return nil, false
}

// recordHealthy verifies a raw drive record decodes and matches its
// content hash. Chunk stubs (streamed versions) are healthy when they
// decode with no inline payload; their content hash spans the chunk
// records, verified separately.
func (c *Controller) recordHealthy(blob []byte) bool {
	rec, err := c.codec.DecodeRecord(blob)
	if err != nil {
		return false
	}
	if rec.Meta.Chunks > 0 {
		return len(rec.Payload) == 0
	}
	return store.HashContent(rec.Payload) == rec.Meta.ContentHash
}

// repairChunks re-establishes the replication invariant for the chunk
// records of one streamed version.
func (c *Controller) repairChunks(ctx context.Context, key string, v, chunks int64, placement []int, report *RepairReport) error {
	for idx := int64(0); idx < chunks; idx++ {
		dk := store.ChunkKey(key, v, idx)
		wantID := store.ChunkID(key, v, idx)
		var blob []byte
		for _, di := range placement {
			cl := c.drives[di].pick()
			c.chargeDriveIO(0)
			cur, _, err := cl.Get(ctx, dk)
			if err == nil && c.chunkHealthy(cur, wantID) {
				blob = cur
				break
			}
		}
		if blob == nil {
			continue // no surviving copy; reads of this version fail, as before repair
		}
		for _, di := range placement {
			cl := c.drives[di].pick()
			c.chargeDriveIO(0)
			cur, _, err := cl.Get(ctx, dk)
			if err == nil && c.chunkHealthy(cur, wantID) {
				continue
			}
			c.chargeDriveIO(len(blob))
			if err := cl.Put(ctx, dk, blob, nil, encodeVer(v), true); err != nil {
				return fmt.Errorf("core: repair %q v%d chunk %d on %s: %w", key, v, idx, c.drives[di].name, err)
			}
			report.Restored++
			report.RestoredBytes += int64(len(blob))
		}
	}
	return nil
}

// repairStripes converges one erasure-coded version's shards onto
// their current homes (the group under today's dead mask). The policy
// is survival-first: a shard found healthy anywhere moves home by
// drive-to-drive P2P copy — the controller never carries the bytes —
// and the decoder runs only for shards with no surviving copy at all,
// rebuilding them from any k healthy shards of the stripe. Healthy
// at-home shards are never rewritten or moved.
func (c *Controller) repairStripes(ctx context.Context, key string, m *store.Meta, report *RepairReport) error {
	code, err := c.ecCodeFor(int(m.ECK), int(m.ECM))
	if err != nil {
		return err
	}
	k, mm := code.DataShards(), code.ParityShards()
	group := c.ecGroup(key, k+mm)
	base := store.Placement(key, len(c.drives), k+mm)
	v := m.Version
	stripes := (m.Chunks + int64(k) - 1) / int64(k)
	for t := int64(0); t < stripes; t++ {
		kt := k
		if rem := m.Chunks - t*int64(k); rem < int64(kt) {
			kt = int(rem)
		}
		type shardState struct {
			slot  int
			idx   int64
			home  int
			srcDi int    // drive holding a healthy copy; -1 = lost
			blob  []byte // the healthy raw record
		}
		states := make([]shardState, 0, kt+mm)
		for s := 0; s < kt; s++ {
			states = append(states, shardState{
				slot: s, idx: t*int64(k) + int64(s),
				home: ecShardDrive(group, s, t), srcDi: -1,
			})
		}
		for j := 0; j < mm; j++ {
			states = append(states, shardState{
				slot: k + j, idx: store.ParityIndex(t, int64(mm), int64(j)),
				home: ecShardDrive(group, k+j, t), srcDi: -1,
			})
		}
		missing := 0
		dead := c.deadMask.Load()
		for i := range states {
			st := &states[i]
			dk := store.ChunkKey(key, v, st.idx)
			wantID := store.ChunkID(key, v, st.idx)
			// Sources, most likely first: the current home, the base
			// home (where the shard lived before a death or after a
			// revival), the rest of both windows, then every remaining
			// drive — a shard rebuilt onto a spare under a past dead
			// mask sits outside both windows once the drive revives.
			// Dead drives are skipped — probing them burns the repair
			// on timeouts. The healthy case exits on the first probe.
			all := make([]int, len(c.drives))
			for i := range all {
				all[i] = i
			}
			cands := unionDrives(unionDrives([]int{st.home, ecShardDrive(base, st.slot, t)}, unionDrives(group, base)), all)
			for _, di := range cands {
				if dead&(1<<uint(di)) != 0 {
					continue
				}
				cl := c.drives[di].pick()
				c.chargeDriveIO(0)
				cur, _, err := cl.Get(ctx, dk)
				if err != nil || !c.chunkHealthy(cur, wantID) {
					continue
				}
				st.srcDi = di
				st.blob = cur
				break
			}
			if st.srcDi < 0 {
				missing++
			}
		}
		// Off-home survivors go home drive-to-drive.
		for i := range states {
			st := &states[i]
			if st.srcDi < 0 || st.srcDi == st.home {
				continue
			}
			dk := store.ChunkKey(key, v, st.idx)
			c.chargeDriveIO(0)
			if err := c.drives[st.srcDi].pick().P2PPush(ctx, dk, c.drives[st.home].name); err != nil {
				// P2P may be unconfigured between these drives; the
				// healthy record is already in hand — write it directly.
				c.chargeDriveIO(len(st.blob))
				if perr := c.drives[st.home].pick().Put(ctx, dk, st.blob, nil, encodeVer(v), true); perr != nil {
					return fmt.Errorf("core: ec repair %q v%d shard %d to %s: %w", key, v, st.idx, c.drives[st.home].name, perr)
				}
			}
			// The home copy is confirmed; the stray would otherwise
			// linger as dark capacity (no delete path enumerates an
			// off-window drive).
			c.chargeDriveIO(0)
			_ = c.drives[st.srcDi].pick().Delete(ctx, dk, nil, true)
			report.Restored++
			report.RestoredBytes += int64(len(st.blob))
			c.stats.ECShardRepairs.Inc()
		}
		if missing == 0 {
			continue
		}
		// Decode path: rebuild genuinely lost shards from any k
		// survivors. Past m losses the stripe is unreconstructable —
		// like a replicated version with no surviving chunk copy,
		// reads of it fail the same before and after repair, so skip
		// it rather than abort the key: an aborted upload's cleanup
		// can race a partially-successful commit and strand a
		// committed-on-one-replica version with zero shards, and
		// erroring out here would block the metadata convergence
		// every later version (and every new write's CAS) depends on.
		healthy := 0
		for i := range states {
			if states[i].srcDi >= 0 {
				healthy++
			}
		}
		if healthy+(k-kt) < k {
			continue
		}
		shardLen := ecChunkLen(m, t*int64(k))
		bufs := make([][]byte, k+mm)
		var zero []byte
		for s := kt; s < k; s++ {
			if zero == nil {
				zero = make([]byte, shardLen)
			}
			bufs[s] = zero // virtual zero shards of a short stripe
		}
		for i := range states {
			st := &states[i]
			if st.srcDi < 0 {
				continue
			}
			rec, err := c.codec.DecodeRecord(st.blob)
			if err != nil {
				continue
			}
			p := rec.Payload
			if len(p) < shardLen {
				pp := make([]byte, shardLen)
				copy(pp, p)
				p = pp
			}
			bufs[st.slot] = p
		}
		if err := code.Reconstruct(bufs); err != nil {
			return fmt.Errorf("core: ec repair %q v%d stripe %d: %w", key, v, t, err)
		}
		for i := range states {
			st := &states[i]
			if st.srcDi >= 0 {
				continue
			}
			p := bufs[st.slot]
			if st.slot < kt {
				p = p[:ecChunkLen(m, st.idx)]
			}
			shardMeta := store.Meta{
				Key: store.ChunkID(key, v, st.idx), Version: v,
				Size: int64(len(p)), ContentHash: store.HashContent(p),
			}
			blob, err := c.codec.EncodeRecord(&store.Record{Meta: shardMeta, Payload: p})
			if err != nil {
				return err
			}
			c.chargeDriveIO(len(blob))
			if err := c.drives[st.home].pick().Put(ctx, store.ChunkKey(key, v, st.idx), blob, nil, encodeVer(v), true); err != nil {
				return fmt.Errorf("core: ec rebuild %q v%d shard %d on %s: %w", key, v, st.idx, c.drives[st.home].name, err)
			}
			report.Restored++
			report.RestoredBytes += int64(len(blob))
			c.stats.ECShardRepairs.Inc()
		}
	}
	return nil
}

// chunkHealthy verifies a raw chunk record against its authenticated
// chunk id and hash.
func (c *Controller) chunkHealthy(blob []byte, wantID string) bool {
	rec, err := c.codec.DecodeRecord(blob)
	if err != nil {
		return false
	}
	return rec.Meta.Key == wantID && store.HashContent(rec.Payload) == rec.Meta.ContentHash
}

// Repair re-replicates an object across its placement drives. See
// repairObject.
func (s *Session) Repair(ctx context.Context, key string) (*RepairReport, error) {
	s.touch()
	if err := s.ctl.checkOwned(key); err != nil {
		return nil, err
	}
	return s.ctl.repairObject(ctx, s.clientKey, key)
}
