package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/authority"
	"repro/internal/policy/lang"
	"repro/internal/store"
	"repro/internal/vll"
)

// Transaction errors.
var (
	ErrNoSuchTx   = errors.New("pesos: unknown transaction id")
	ErrTxFinished = errors.New("pesos: transaction already committed or aborted")
)

// TxOpResult is the outcome of one operation inside a committed
// transaction, retrievable with CheckResults (§4.4).
type TxOpResult struct {
	Key     string
	Op      string // "read" or "write"
	Value   []byte // read result
	Version int64  // version read or written
	Err     string // per-op failure (policy denial aborts the tx instead)
}

// txState buffers a transaction until commit (§4.2's transaction
// buffer).
type txState struct {
	id       uint64
	reads    []string
	writes   map[string][]byte
	writeSeq []string // declaration order for deterministic results
	certs    []*authority.Certificate
	lock     *vll.Tx
	finished bool
	results  []TxOpResult
}

// CreateTx opens a transaction and returns its id (§4.4: createTx).
func (s *Session) CreateTx() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextTx++
	id := s.nextTx
	s.txs[id] = &txState{id: id, writes: make(map[string][]byte)}
	return id
}

// AddRead declares a key the transaction will read (§4.4: addRead).
func (s *Session) AddRead(txID uint64, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tx, err := s.txLocked(txID)
	if err != nil {
		return err
	}
	tx.reads = append(tx.reads, key)
	return nil
}

// AddWrite declares a key/value the transaction will write (§4.4:
// addWrite). Declaring the same key again replaces the value.
func (s *Session) AddWrite(txID uint64, key string, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tx, err := s.txLocked(txID)
	if err != nil {
		return err
	}
	if _, seen := tx.writes[key]; !seen {
		tx.writeSeq = append(tx.writeSeq, key)
	}
	tx.writes[key] = value
	return nil
}

// AddCertificates attaches certified facts used for the policy checks
// of every operation in the transaction.
func (s *Session) AddCertificates(txID uint64, certs ...*authority.Certificate) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tx, err := s.txLocked(txID)
	if err != nil {
		return err
	}
	tx.certs = append(tx.certs, certs...)
	return nil
}

// AbortTx discards a transaction (§4.4: abortTx).
func (s *Session) AbortTx(txID uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tx, err := s.txLocked(txID)
	if err != nil {
		return err
	}
	tx.finished = true
	if tx.lock != nil {
		s.ctl.locks.Finish(tx.lock)
	}
	delete(s.txs, txID)
	s.ctl.stats.TxAborts.Inc()
	return nil
}

// CommitTx executes the transaction with full isolation (§4.4:
// commitTx): VLL locks its read/write sets, every operation passes
// its policy check before any write is applied, then all writes go to
// the drives. A policy denial or version conflict aborts the whole
// transaction with no effects.
//
// Atomicity note: within one controller, VLL mutual exclusion makes
// the commit atomic with respect to other transactions; durability of
// partially-replicated writes after a controller crash is recovered
// from replicas, as the paper's design relies on (§4.4: "we rely on
// replication to recover from disk crashes").
func (s *Session) CommitTx(ctx context.Context, txID uint64) error {
	s.mu.Lock()
	tx, err := s.txLocked(txID)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	tx.finished = true
	readSet := append([]string(nil), tx.reads...)
	writeSet := make([]string, 0, len(tx.writes))
	writeSet = append(writeSet, tx.writeSeq...)
	s.mu.Unlock()

	// Reads of keys also written are served from the write set; they
	// must not appear in both VLL sets.
	readOnly := readSet[:0:0]
	for _, k := range readSet {
		if _, written := tx.writes[k]; !written {
			readOnly = append(readOnly, k)
		}
	}
	sort.Strings(readOnly)

	lock, err := s.ctl.locks.Begin(readOnly, writeSet)
	if err != nil {
		return err
	}
	s.mu.Lock()
	tx.lock = lock
	s.mu.Unlock()
	if err := lock.Wait(ctx); err != nil {
		s.ctl.locks.Finish(lock)
		return err
	}
	defer s.ctl.locks.Finish(lock)

	// Phase 1: policy checks for every operation, before any effect.
	// Separate policyEval contexts per permission: each caches one
	// (policy, op, session) residual, and interleaving read/update
	// checks through a shared context would thrash that slot.
	peRead, peUpdate := &policyEval{}, &policyEval{}
	for _, k := range readOnly {
		meta, err := s.ctl.loadMeta(ctx, k)
		if err != nil && !errors.Is(err, ErrNotFound) {
			return s.txAbort(txID, err)
		}
		if meta != nil {
			if err := s.ctl.checkPolicyCtx(ctx, peRead, lang.PermRead, s.clientKey, k, meta, nil, tx.certs); err != nil {
				return s.txAbort(txID, err)
			}
		}
	}
	type plannedWrite struct {
		key  string
		next int64
		meta *store.Meta // nil on creation
	}
	planned := make([]plannedWrite, 0, len(writeSet))
	for _, k := range writeSet {
		meta, err := s.ctl.loadMeta(ctx, k)
		if err != nil && !errors.Is(err, ErrNotFound) {
			return s.txAbort(txID, err)
		}
		var next int64
		if meta != nil {
			next = meta.Version + 1
		}
		if err := s.ctl.checkPolicyCtx(ctx, peUpdate, lang.PermUpdate, s.clientKey, k, meta, &next, tx.certs); err != nil {
			return s.txAbort(txID, err)
		}
		planned = append(planned, plannedWrite{key: k, next: next, meta: meta})
	}

	// Phase 2: execute. Reads first (snapshot under the locks), then
	// writes.
	var results []TxOpResult
	for _, k := range readOnly {
		val, meta, err := s.ctl.getObject(ctx, s.clientKey, k, GetOptions{Certs: tx.certs})
		r := TxOpResult{Key: k, Op: "read"}
		if err != nil {
			r.Err = err.Error()
		} else {
			r.Value = val
			r.Version = meta.Version
		}
		results = append(results, r)
	}
	// Writes commit as one batch stream per placement drive (all
	// drives concurrently) instead of sequential singleton puts per
	// key: the object and metadata records of every write stay paired
	// inside atomic wire messages, and a transaction touching many
	// keys pays max-of-replica latency, not a sum over keys.
	staged := make([]txWrite, 0, len(planned))
	for _, pw := range planned {
		staged = append(staged, txWrite{
			key: pw.key, next: pw.next, meta: pw.meta, value: tx.writes[pw.key],
		})
	}
	if err := s.ctl.commitTxWrites(ctx, staged); err != nil {
		// Keys are VLL-locked, so a failure here means replica failure
		// or an out-of-band writer; surface it and abort.
		return s.txAbort(txID, err)
	}
	for _, pw := range planned {
		results = append(results, TxOpResult{Key: pw.key, Op: "write", Version: pw.next})
	}

	s.mu.Lock()
	tx.results = results
	s.mu.Unlock()
	s.ctl.stats.TxCommits.Inc()
	return nil
}

// CheckResults returns the per-operation outcomes of a committed
// transaction (§4.4: checkResults). The transaction stays queryable
// until the session expires.
func (s *Session) CheckResults(txID uint64) ([]TxOpResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tx, ok := s.txs[txID]
	if !ok {
		return nil, ErrNoSuchTx
	}
	if !tx.finished {
		return nil, fmt.Errorf("pesos: transaction %d not committed", txID)
	}
	return tx.results, nil
}

// txAbort releases the transaction after a failed commit, keeping the
// failure queryable.
func (s *Session) txAbort(txID uint64, cause error) error {
	s.mu.Lock()
	if tx, ok := s.txs[txID]; ok {
		tx.results = append(tx.results, TxOpResult{Op: "abort", Err: cause.Error()})
	}
	s.mu.Unlock()
	s.ctl.stats.TxAborts.Inc()
	return cause
}

// txLocked fetches a live transaction; caller holds s.mu.
func (s *Session) txLocked(txID uint64) (*txState, error) {
	tx, ok := s.txs[txID]
	if !ok {
		return nil, ErrNoSuchTx
	}
	if tx.finished {
		return nil, ErrTxFinished
	}
	return tx, nil
}
