package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/kinetic/kclient"
)

// DriveEndpoint names one Kinetic drive and how to reach it.
type DriveEndpoint struct {
	// Name identifies the drive in logs and placement-independent
	// diagnostics.
	Name string
	// Dial opens a byte stream to the drive (TCP+TLS or in-memory).
	Dial kclient.Dialer
	// Conns is the number of parallel connections the controller
	// keeps to this drive (the Kinetic library's thread pool, §4.3);
	// 0 selects a default of 4.
	Conns int
}

// drivePool multiplexes requests over several connections to one
// drive, mirroring the adapted Kinetic C library's decoupled
// request/response handling (§3.1).
type drivePool struct {
	name    string
	clients []*kclient.Client
	next    atomic.Uint64
}

// dialPool connects all pool connections with creds.
func dialPool(ctx context.Context, ep DriveEndpoint, creds kclient.Credentials) (*drivePool, error) {
	n := ep.Conns
	if n <= 0 {
		n = 4
	}
	p := &drivePool{name: ep.Name}
	for i := 0; i < n; i++ {
		c, err := kclient.Dial(ctx, ep.Dial, creds)
		if err != nil {
			p.close()
			return nil, fmt.Errorf("core: dial drive %s: %w", ep.Name, err)
		}
		p.clients = append(p.clients, c)
	}
	return p, nil
}

// pick returns the next connection round-robin.
func (p *drivePool) pick() *kclient.Client {
	i := p.next.Add(1)
	return p.clients[i%uint64(len(p.clients))]
}

// setCredentials switches every connection to new credentials.
func (p *drivePool) setCredentials(creds kclient.Credentials) {
	for _, c := range p.clients {
		c.SetCredentials(creds)
	}
}

func (p *drivePool) close() {
	for _, c := range p.clients {
		c.Close()
	}
}
