package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kinetic/kclient"
)

// DriveEndpoint names one Kinetic drive and how to reach it.
type DriveEndpoint struct {
	// Name identifies the drive in logs and placement-independent
	// diagnostics.
	Name string
	// Dial opens a byte stream to the drive (TCP+TLS or in-memory).
	Dial kclient.Dialer
	// Conns is the number of parallel connections the controller
	// keeps to this drive (the Kinetic library's thread pool, §4.3);
	// 0 selects a default of 4.
	Conns int
}

// drivePool multiplexes requests over several connections to one
// drive, mirroring the adapted Kinetic C library's decoupled
// request/response handling (§3.1), and tracks the drive's observed
// read latency for the hedged read engine (see replicate.go).
type drivePool struct {
	name    string
	clients []*kclient.Client
	next    atomic.Uint64
	lat     latencyEstimator

	credMu sync.Mutex
	creds  kclient.Credentials
}

// dialPool connects all pool connections with creds.
func dialPool(ctx context.Context, ep DriveEndpoint, creds kclient.Credentials) (*drivePool, error) {
	n := ep.Conns
	if n <= 0 {
		n = 4
	}
	p := &drivePool{name: ep.Name, creds: creds}
	for i := 0; i < n; i++ {
		c, err := kclient.Dial(ctx, ep.Dial, creds)
		if err != nil {
			p.close()
			return nil, fmt.Errorf("core: dial drive %s: %w", ep.Name, err)
		}
		p.clients = append(p.clients, c)
	}
	return p, nil
}

// pick returns the next connection round-robin.
func (p *drivePool) pick() *kclient.Client {
	i := p.next.Add(1)
	return p.clients[i%uint64(len(p.clients))]
}

// observe records one completed read round trip against the drive.
func (p *drivePool) observe(d time.Duration) { p.lat.observe(d) }

// observeFailure records a failed (non-cancelled) read round trip.
func (p *drivePool) observeFailure() { p.lat.observeFailure() }

// latency returns the pool's current read-latency estimate: the EWMA
// mean, the running p95 estimate, and the sample count (0 = no reads
// observed yet).
func (p *drivePool) latency() (ewma, p95 time.Duration, n uint64) {
	return p.lat.snapshot()
}

// failing reports whether the drive's most recent read round trips
// failed. The hedged engine demotes failing drives from the primary
// slot: a dead drive never completes a read, so it would otherwise
// never accumulate samples and keep being tried first forever.
func (p *drivePool) failing() bool { return p.lat.failing() }

// setCredentials switches every connection to new credentials.
func (p *drivePool) setCredentials(creds kclient.Credentials) {
	p.credMu.Lock()
	p.creds = creds
	p.credMu.Unlock()
	for _, c := range p.clients {
		c.SetCredentials(creds)
	}
}

// credentials returns the credentials the pool currently signs with
// (the credential-rotation handoff step needs them to stage the
// two-phase account switch).
func (p *drivePool) credentials() kclient.Credentials {
	p.credMu.Lock()
	defer p.credMu.Unlock()
	return p.creds
}

func (p *drivePool) close() {
	for _, c := range p.clients {
		c.Close()
	}
}

// latencyEstimator maintains a constant-space running estimate of one
// drive's read latency: an exponentially weighted moving average for
// replica ordering, plus a stochastic-approximation p95 (step toward
// each sample, 19:1 asymmetric) that sizes the hedge delay. Both
// follow drift — a drive that degrades mid-run loses its primary slot
// within a few dozen reads.
type latencyEstimator struct {
	mu    sync.Mutex
	ewma  float64 // nanoseconds
	p95   float64 // nanoseconds
	n     uint64
	fails uint32 // consecutive failed round trips; reset on success
}

// observe folds one sample into the estimate.
func (e *latencyEstimator) observe(d time.Duration) {
	ns := float64(d)
	if ns < 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.fails = 0
	e.n++
	if e.n == 1 {
		e.ewma, e.p95 = ns, ns
		return
	}
	const alpha = 0.2
	e.ewma += alpha * (ns - e.ewma)
	// Stochastic p95: the step size tracks the latency scale so the
	// quantile converges on any medium (µs simulator, ms HDD model).
	step := e.ewma * 0.05
	if step <= 0 {
		step = 1
	}
	if ns > e.p95 {
		e.p95 += step * 0.95
	} else {
		e.p95 -= step * 0.05
	}
	// Heuristic floor: a hedge delay below the mean would hedge most
	// reads, defeating the occupancy win.
	if e.p95 < e.ewma {
		e.p95 = e.ewma
	}
}

// observeFailure counts a failed round trip; any success resets it.
func (e *latencyEstimator) observeFailure() {
	e.mu.Lock()
	if e.fails < 1<<31 {
		e.fails++
	}
	e.mu.Unlock()
}

// failing reports whether the latest round trips failed.
func (e *latencyEstimator) failing() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fails > 0
}

// snapshot returns the current estimate.
func (e *latencyEstimator) snapshot() (ewma, p95 time.Duration, n uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return time.Duration(e.ewma), time.Duration(e.p95), e.n
}
