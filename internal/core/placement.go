package core

import "repro/internal/store"

// placement returns the drive indices holding key's replicas,
// substituting drives the failure detector has declared dead with the
// next live drives along the placement ring. With no dead drives this
// is exactly store.Placement — one atomic load of the dead mask on
// the hot path.
func (c *Controller) placement(key string) []int {
	base := store.Placement(key, len(c.drives), c.cfg.Replicas)
	mask := c.deadMask.Load()
	if mask == 0 {
		return base
	}
	return substituteDead(base[0], len(c.drives), c.cfg.Replicas, mask)
}

// ecGroup returns the size drives holding a key's erasure-coded
// shards: the base window is the primary plus the next size-1 ring
// positions (the same walk as replica placement, so the stub records
// on placement(key) are a prefix of the group), with dead members
// substituted slot-stably. Shard s of stripe t lives on
// group[(s+t) % len(group)] — the stripe rotation spreads parity
// writes across the whole group instead of pinning them to the last
// m drives.
func (c *Controller) ecGroup(key string, size int) []int {
	base := store.Placement(key, len(c.drives), size)
	mask := c.deadMask.Load()
	if mask == 0 {
		return base
	}
	return substituteDead(base[0], len(c.drives), size, mask)
}

// substituteDead substitutes the dead members of the size-wide
// placement window starting at primary, slot by slot: a live member
// keeps its exact slot, a dead member is replaced by the next unused
// live drive beyond the window along the ring. Slot stability is what
// both consumers need — the anti-entropy sweeper re-replicates only
// the missing copy, and an erasure-coding group must never relocate a
// healthy shard just because an unrelated drive died (each slot is a
// shard home). If no live spare remains, the dead drive keeps its
// slot so the slice keeps its expected length (writes to it fail and
// surface as replication errors, exactly as before detection).
//
// For an unchanged mask the result is deterministic, so layouts are
// stable across calls with no bookkeeping; a revived drive re-derives
// the original window.
func substituteDead(primary, n, size int, mask uint64) []int {
	if size > n {
		size = n
	}
	out := make([]int, size)
	for i := range out {
		out[i] = (primary + i) % n
	}
	spare := size
	for s, di := range out {
		if mask&(1<<uint(di)) == 0 {
			continue
		}
		for ; spare < n; spare++ {
			cand := (primary + spare) % n
			if mask&(1<<uint(cand)) == 0 {
				out[s] = cand
				spare++
				break
			}
		}
	}
	return out
}

// unionDrives merges two drive index sets, preserving a's order and
// appending b's unseen members.
func unionDrives(a, b []int) []int {
	out := append([]int(nil), a...)
	for _, di := range b {
		seen := false
		for _, x := range out {
			if x == di {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, di)
		}
	}
	return out
}
