package core

import "repro/internal/store"

// placement returns the drive indices holding key's replicas,
// substituting drives the failure detector has declared dead with the
// next live drives along the placement ring. With no dead drives this
// is exactly store.Placement — one atomic load of the dead mask on
// the hot path.
//
// The substitution preserves the ring walk: store.Placement already
// assigns replicas to consecutive ring positions after the primary,
// so the "spare" for a dead drive is simply the first subsequent live
// position. Surviving replicas keep their slots, which is what lets
// the anti-entropy sweeper re-replicate only the missing copy, and
// reverting a revived drive re-derives the original placement with no
// bookkeeping.
func (c *Controller) placement(key string) []int {
	base := store.Placement(key, len(c.drives), c.cfg.Replicas)
	mask := c.deadMask.Load()
	if mask == 0 {
		return base
	}
	return substituteDead(base[0], len(c.drives), c.cfg.Replicas, mask)
}

// substituteDead walks the placement ring from primary collecting the
// first replicas live drives. If fewer than replicas drives are live,
// dead positions fill the tail so the slice keeps its expected length
// (writes to them fail and surface as replication errors, exactly as
// before detection).
func substituteDead(primary, n, replicas int, mask uint64) []int {
	out := make([]int, 0, replicas)
	for i := 0; i < n && len(out) < replicas; i++ {
		di := (primary + i) % n
		if mask&(1<<uint(di)) == 0 {
			out = append(out, di)
		}
	}
	for i := 0; i < n && len(out) < replicas; i++ {
		di := (primary + i) % n
		if mask&(1<<uint(di)) != 0 {
			out = append(out, di)
		}
	}
	return out
}
