// Replication engine: atomic batched writes fanned out to every
// placement replica concurrently (§3.2 steps 4–7, §4.5).
//
// The write path commits an object record *and* its metadata record to
// every replica. Doing that as independent round trips has two costs:
// latency grows as replicas × 2 RTT, and a failure between the two
// puts strands an object version without its metadata (or worse, fresh
// metadata pointing at a missing record). Here each replica instead
// receives ONE atomic batch carrying both records — the drive applies
// all sub-operations or none — and all replicas are written
// concurrently, so write-through latency is the maximum replica RTT
// rather than the sum, and object/meta can never diverge on a drive.
//
// Reads come in two engines. The fan-out baseline is parallel
// first-wins failover: every replica is asked concurrently and the
// first healthy answer wins — latency-optimal, but every cache-miss
// read occupies all replicas' media. The default engine is the
// latency-aware hedged read: the replica with the lowest observed
// latency is asked first and a hedge to the next replica fires only
// after an adaptive delay (~p95 of the outstanding replica's
// latency), so the common-case read occupies one drive's media while
// a slow or dead replica still gets covered within the hedge delay.
// Both engines preserve the same semantics: success first-wins,
// absence needs unanimity, mixed not-found/error surfaces the error.
package core

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/kinetic/kclient"
	"repro/internal/kinetic/wire"
	"repro/internal/obs"
	"repro/internal/store"
)

// fanout runs fn against every placement drive concurrently and waits
// for all of them. The operation succeeds only if every replica
// succeeds (the paper's write-through replication, §4.5); individual
// failures are aggregated so errors.Is still matches sentinels like
// kclient.ErrVersionMismatch.
func (c *Controller) fanout(placement []int, fn func(di int) error) error {
	if len(placement) == 1 {
		return fn(placement[0])
	}
	errs := make([]error, len(placement))
	var wg sync.WaitGroup
	for i, di := range placement {
		wg.Add(1)
		go func(i, di int) {
			defer wg.Done()
			errs[i] = fn(di)
		}(i, di)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// readReplicas dispatches a replicated read through the configured
// engine — the hedged primary-first path unless Config.FanoutReads
// keeps the all-replica baseline — and feeds completed round trips
// into the per-drive latency estimators either way. A drive's answer
// counts as a latency sample whether it found the record or not; a
// transport failure does not (it says nothing about the medium).
//
// The placement is resolved to pool pointers before any goroutine
// launches: a straggler read may be scheduled after the winner
// returned — even after the controller shut down and dropped its
// drive table — and must never index controller state.
func readReplicas[T any](ctx context.Context, c *Controller, placement []int, read func(ctx context.Context, p *drivePool) (T, error)) (T, error) {
	pools := make([]*drivePool, len(placement))
	for i, di := range placement {
		pools[i] = c.drives[di]
	}
	if len(pools) <= 1 || c.cfg.FanoutReads {
		// The fan-out engine observes through a wrapper; the hedged
		// engine samples internally so each physical read contributes
		// exactly one sample (outlived stragglers are charged at
		// winner-return, not again on late completion).
		timed := func(ctx context.Context, p *drivePool) (T, error) {
			t0 := time.Now()
			v, err := read(ctx, p)
			recordOutcome(p, time.Since(t0), err)
			return v, err
		}
		return readFirstWins(ctx, pools, timed)
	}
	return readHedged(ctx, c, pools, read)
}

// recordOutcome feeds one completed round trip into a pool's latency
// estimator: answers (found or authoritative not-found) are latency
// samples, transport failures count toward the failing demotion, and
// cancelled reads (by a winner or the caller) say nothing about the
// medium.
func recordOutcome(p *drivePool, elapsed time.Duration, err error) {
	switch {
	case err == nil || errors.Is(err, ErrNotFound):
		p.observe(elapsed)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
	default:
		p.observeFailure()
	}
}

// readFirstWins asks every placement replica concurrently and returns
// the first successful answer, cancelling the stragglers. A replica
// reporting not-found is only believed once every replica has answered
// and none failed outright — a degraded replica that lost a record
// (pre-repair) must not shadow a healthy copy, and an unreachable
// replica means "don't know", so a mixed not-found/error outcome
// surfaces the error rather than affirming absence.
//
// Trade-off: every cache-miss read occupies all replicas' media. This
// is the measured baseline the hedged engine replaces; it remains
// selectable for benchmarks and as the conservative fallback.
func readFirstWins[T any](ctx context.Context, pools []*drivePool, read func(ctx context.Context, p *drivePool) (T, error)) (T, error) {
	var zero T
	if len(pools) == 1 {
		return read(ctx, pools[0])
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		val T
		err error
	}
	ch := make(chan result, len(pools))
	for _, p := range pools {
		go func(p *drivePool) {
			v, err := read(rctx, p)
			ch <- result{v, err}
		}(p)
	}
	var notFound, lastErr error
	for range pools {
		r := <-ch
		if r.err == nil {
			return r.val, nil
		}
		switch {
		case errors.Is(r.err, ErrNotFound):
			notFound = r.err
		case errors.Is(r.err, context.Canceled) && ctx.Err() == nil:
			// A straggler cancelled after the winner returned; never
			// the answer. (Unreachable in practice — we return on the
			// first success — but cheap to classify correctly.)
		default:
			lastErr = r.err
		}
	}
	if notFound != nil && lastErr == nil {
		return zero, notFound
	}
	return zero, lastErr
}

// Hedge-delay bounds. Until a drive has enough samples the engine
// hedges after a conservative default; the adaptive delay (~1.25×
// the outstanding drive's p95) is clamped so a noisy estimate can
// neither busy-hedge the media nor leave a dead replica uncovered.
const (
	defaultHedgeDelay = 2 * time.Millisecond
	minHedgeDelay     = 100 * time.Microsecond
	maxHedgeDelay     = 50 * time.Millisecond
	hedgeWarmup       = 16 // samples before the adaptive delay engages
)

// hedgeDelay returns how long to wait on a drive pool before hedging
// to the next replica.
func (c *Controller) hedgeDelay(p *drivePool) time.Duration {
	if c.cfg.HedgeDelay > 0 {
		return c.cfg.HedgeDelay
	}
	_, p95, n := p.latency()
	if n < hedgeWarmup {
		return defaultHedgeDelay
	}
	d := p95 + p95/4
	return min(max(d, minHedgeDelay), maxHedgeDelay)
}

// orderByLatency returns the pools sorted fastest-first by observed
// EWMA read latency. Drives with no samples yet sort first: they get
// explored as primaries until an estimate exists, after which the
// ordering self-corrects within a few reads of any latency shift.
// Drives whose latest round trips failed sort last regardless of
// their estimate — a dead drive never completes a read, so latency
// samples alone could never demote it, and every read would pay the
// hedge delay before reaching a healthy replica.
func orderByLatency(pools []*drivePool) []*drivePool {
	out := slices.Clone(pools)
	type rank struct {
		failing bool
		ewma    time.Duration
	}
	ranks := make(map[*drivePool]rank, len(out))
	for _, p := range out {
		r := rank{failing: p.failing()}
		if e, _, n := p.latency(); n > 0 {
			r.ewma = e
		}
		ranks[p] = r
	}
	sort.SliceStable(out, func(i, j int) bool {
		ri, rj := ranks[out[i]], ranks[out[j]]
		if ri.failing != rj.failing {
			return !ri.failing
		}
		return ri.ewma < rj.ewma
	})
	return out
}

// readHedged is the latency-aware primary-first read engine: the
// fastest replica is asked first and a hedge to the next-fastest
// fires only once the outstanding replica has been quiet for its own
// adaptive delay. The failover semantics match readFirstWins exactly —
// the first success wins and cancels the stragglers; a not-found is
// only believed once every replica affirmed it (a degraded replica
// must not shadow a healthy copy), so absence and hard errors consult
// all remaining replicas immediately rather than waiting out hedge
// delays.
func readHedged[T any](ctx context.Context, c *Controller, pools []*drivePool, read func(ctx context.Context, p *drivePool) (T, error)) (T, error) {
	var zero T
	order := orderByLatency(pools)
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		val T
		err error
		idx int // index into order
	}
	ch := make(chan result, len(order))
	starts := make([]time.Time, len(order))
	done := make([]bool, len(order))
	launched := 0
	launch := func() {
		i, p := launched, order[launched]
		starts[i] = time.Now()
		launched++
		go func() {
			v, err := read(rctx, p)
			ch <- result{v, err, i}
		}()
	}
	launch()
	var notFound, lastErr error
	for answered := 0; answered < len(order); {
		var timer *time.Timer
		var hedge <-chan time.Time
		if launched < len(order) {
			timer = time.NewTimer(c.hedgeDelay(order[launched-1]))
			hedge = timer.C
		}
		select {
		case r := <-ch:
			if timer != nil {
				timer.Stop()
			}
			answered++
			done[r.idx] = true
			// Each physical read contributes exactly one estimator
			// sample, recorded here rather than in the read goroutine:
			// a straggler completing after the winner returned is
			// already charged below and must not be counted twice.
			recordOutcome(order[r.idx], time.Since(starts[r.idx]), r.err)
			if r.err == nil {
				// Outlived drives launched before the winner got a head
				// start and still lost: charge them their elapsed time
				// as a latency sample. Without this, a degraded primary
				// whose reads always lose the hedge race would never
				// complete a round trip, never update its estimate, and
				// keep its primary slot forever.
				for i := 0; i < r.idx; i++ {
					if !done[i] {
						done[i] = true
						order[i].observe(time.Since(starts[i]))
					}
				}
				return r.val, nil
			}
			switch {
			case errors.Is(r.err, ErrNotFound):
				notFound = r.err
			case errors.Is(r.err, context.Canceled) && ctx.Err() == nil:
				// A straggler cancelled after the winner returned;
				// never the answer.
			default:
				lastErr = r.err
			}
			// Absence needs unanimity and a failure demands immediate
			// failover: every remaining replica is consulted now.
			for launched < len(order) {
				launch()
			}
		case <-hedge:
			c.stats.ReadHedges.Inc()
			launch()
		case <-ctx.Done():
			if timer != nil {
				timer.Stop()
			}
			return zero, ctx.Err()
		}
	}
	if notFound != nil && lastErr == nil {
		return zero, notFound
	}
	return zero, lastErr
}

// replicaWrite is one key's worth of a replicated write: the object
// record and the metadata record that must commit together.
type replicaWrite struct {
	key     string
	next    int64
	prev    []byte // meta CAS token; nil on creation
	blob    []byte // encoded object record
	metaRec []byte // marshalled metadata
}

// appendBatchOps appends the write's atomic sub-operation pair — the
// group every replica receives — to dst: object record first
// (content-addressed by version, forced), then the metadata record
// guarded by compare-and-swap against concurrent controllers. Append
// style so the batch write path can assemble into pooled scratch.
func (w *replicaWrite) appendBatchOps(dst []wire.BatchOp) []wire.BatchOp {
	return append(dst,
		wire.BatchOp{Op: wire.BatchPut, Key: store.ObjectKey(w.key, w.next), Value: w.blob,
			NewVersion: encodeVer(w.next), Force: true},
		wire.BatchOp{Op: wire.BatchPut, Key: store.MetaKey(w.key), Value: w.metaRec,
			DBVersion: w.prev, NewVersion: encodeVer(w.next)})
}

// putReplicas commits one write to all placement replicas: one
// sub-operation group per replica drive, all replicas concurrently.
// Latency is the slowest replica's single round trip — 2 round trips
// × replicas in the serial-singleton scheme collapse to 1 × max —
// and under group commit the round trip is shared with whatever other
// clients' writes the drive's scheduler merged alongside.
func (c *Controller) putReplicas(ctx context.Context, w *replicaWrite, placement []int) error {
	payload := len(w.blob) + len(w.metaRec)
	return c.fanout(placement, func(di int) error {
		ops := w.appendBatchOps(getOps())
		if err := c.driveBatch(ctx, di, ops, payload, wire.SyncWriteThrough, true); err != nil {
			return fmt.Errorf("core: batched write %q to drive %s: %w", w.key, c.drives[di].name, err)
		}
		return nil
	})
}

// putReplicasSerial is the seed's write path — a serial loop of
// independent object and meta puts per replica — kept as the measured
// baseline for the replication benchmark and selectable with
// Config.SerialReplication. It has the failure window the batched path
// closes: a crash between the two puts strands an object record
// without metadata.
func (c *Controller) putReplicasSerial(ctx context.Context, w *replicaWrite, placement []int) error {
	for _, di := range placement {
		cl := c.drives[di].pick()
		c.chargeDriveIO(len(w.blob))
		if err := cl.Put(ctx, store.ObjectKey(w.key, w.next), w.blob, nil, encodeVer(w.next), true); err != nil {
			return fmt.Errorf("core: write object to drive %s: %w", c.drives[di].name, err)
		}
		c.chargeDriveIO(len(w.metaRec))
		if err := cl.Put(ctx, store.MetaKey(w.key), w.metaRec, w.prev, encodeVer(w.next), false); err != nil {
			return fmt.Errorf("core: write meta to drive %s: %w", c.drives[di].name, err)
		}
	}
	return nil
}

// replicationFailed maps a replication error for the client and drops
// the affected keys' cached metadata: a partial failure may have
// advanced (or destroyed) state on some replicas past what the cache
// holds, so readers must re-read drive state; a metadata CAS conflict
// becomes the client-visible version error.
func (c *Controller) replicationFailed(err error, keys ...string) error {
	if err == nil {
		return nil
	}
	for _, k := range keys {
		// Forget before Remove: an in-flight coalesced fetch must not
		// re-install the entry after the invalidation.
		c.metaFlight.Forget(k)
		c.metaCache.Remove(k)
	}
	if errors.Is(err, kclient.ErrVersionMismatch) {
		return fmt.Errorf("%w: concurrent update detected", ErrBadVersion)
	}
	return err
}

// writeThrough dispatches a replicated write through the configured
// engine.
func (c *Controller) writeThrough(ctx context.Context, w *replicaWrite) error {
	placement := c.placement(w.key)
	ctx, span := obs.StartSpan(ctx, "replicate")
	span.Attr("replicas", strconv.Itoa(len(placement)))
	var err error
	if c.cfg.SerialReplication {
		err = c.putReplicasSerial(ctx, w, placement)
	} else {
		err = c.putReplicas(ctx, w, placement)
	}
	span.End()
	return c.replicationFailed(err, w.key)
}

// deleteReplica removes every stored version of key — object records
// and streamed chunk records — plus its metadata on one drive,
// batched: the metadata delete leads the first batch so its
// compare-and-swap guard rejects the whole destruction if a
// concurrent controller bumped the object — before any record is lost
// (the serial scheme only noticed after the records were gone).
func (c *Controller) deleteReplica(ctx context.Context, di int, key string, metaVer int64) error {
	cl := c.drives[di].pick()
	start, end := store.ObjectKeyRange(key)
	keys, err := c.rangeAll(ctx, cl, start, end)
	if err != nil {
		return err
	}
	cstart, cend := store.ChunkKeyRange(key)
	chunkKeys, err := c.rangeAll(ctx, cl, cstart, cend)
	if err != nil {
		return err
	}
	keys = append(keys, chunkKeys...)
	ops := make([]wire.BatchOp, 0, len(keys)+1)
	ops = append(ops, wire.BatchOp{Op: wire.BatchDelete, Key: store.MetaKey(key), DBVersion: encodeVer(metaVer)})
	for _, k := range keys {
		ops = append(ops, wire.BatchOp{Op: wire.BatchDelete, Key: k, Force: true})
	}
	metaPending := true
	for len(ops) > 0 {
		n := min(len(ops), wire.MaxBatchOps)
		// Each chunk is one group: destruction stays write-through (a
		// released range's records must be durably gone before the
		// handoff acknowledges), and the CAS-guarded metadata delete
		// leading the first chunk protects the whole stream.
		err := c.driveBatch(ctx, di, ops[:n], 0, wire.SyncWriteThrough, false)
		if metaPending && err != nil {
			var be *kclient.BatchError
			if errors.As(err, &be) && be.Index == 0 && errors.Is(err, kclient.ErrNotFound) {
				// This replica already lost its metadata (degraded
				// pre-repair state): drop the guard and still collect
				// the version records.
				ops = ops[1:]
				metaPending = false
				continue
			}
		}
		if err != nil {
			return err
		}
		metaPending = false
		ops = ops[n:]
	}
	for _, k := range keys {
		c.objectFlight.Forget(string(k))
		c.objectCache.Remove(string(k))
	}
	return nil
}

// rangeAll drains a drive key range past the drive's per-response cap
// (Kinetic drives return at most 800 keys per GetKeyRange), looping
// with an exclusive-start continuation until the range is exhausted.
func (c *Controller) rangeAll(ctx context.Context, cl *kclient.Client, start, end []byte) ([][]byte, error) {
	var out [][]byte
	inclusive := true
	for {
		c.chargeDriveIO(0)
		keys, err := cl.GetKeyRange(ctx, start, end, inclusive, false, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, keys...)
		if len(keys) < driveRangeCap {
			return out, nil
		}
		start, inclusive = keys[len(keys)-1], false
	}
}

// driveRangeCap mirrors the drive-side GetKeyRange response cap; a
// response this full may have been truncated.
const driveRangeCap = 800

// lockStripes acquires the per-key mutation stripes for a set of keys
// in deterministic order (deduplicated, sorted) so multi-key commits
// cannot deadlock against each other or single-key writers. The
// returned function releases them in reverse order.
func (c *Controller) lockStripes(keys []string) (unlock func()) {
	seen := make(map[int]bool, len(keys))
	idx := make([]int, 0, len(keys))
	for _, k := range keys {
		if i := stripeIndex(k); !seen[i] {
			seen[i] = true
			idx = append(idx, i)
		}
	}
	sort.Ints(idx)
	for _, i := range idx {
		c.writeLocks[i].Lock()
	}
	return func() {
		for j := len(idx) - 1; j >= 0; j-- {
			c.writeLocks[idx[j]].Unlock()
		}
	}
}

// txWrite is one planned transactional write: the key, its planned
// next version, the current metadata (nil on creation) and the new
// payload.
type txWrite struct {
	key   string
	next  int64
	meta  *store.Meta
	value []byte
}

// commitTxWrites stages, persists and publishes a transaction's write
// set. Policy checks and version planning already happened under the
// VLL locks; this encodes every record, takes the per-key mutation
// stripes (so non-transactional writers serialize against the commit),
// pushes the batches through commitWrites and finally publishes the
// new versions to the caches.
func (c *Controller) commitTxWrites(ctx context.Context, writes []txWrite) error {
	if len(writes) == 0 {
		return nil
	}
	staged := make([]*replicaWrite, 0, len(writes))
	newMetas := make([]*store.Meta, 0, len(writes))
	keys := make([]string, 0, len(writes))
	for _, tw := range writes {
		if int64(len(tw.value)) > store.MaxObjectSize {
			return fmt.Errorf("pesos: tx write %q: %w", tw.key, store.ErrTooLarge)
		}
		c.cost.MoveBytes(len(tw.value)) // payload crosses into the enclave
		newMeta := &store.Meta{
			Key:         tw.key,
			Version:     tw.next,
			Size:        int64(len(tw.value)),
			ContentHash: store.HashContent(tw.value),
		}
		if tw.meta != nil {
			// Transactional writes keep the object's policy; the stored
			// hash is authoritative for the unchanged program.
			newMeta.PolicyID = tw.meta.PolicyID
			newMeta.PolicyHash = tw.meta.PolicyHash
		}
		blob, err := c.codec.EncodeRecord(&store.Record{Meta: *newMeta, Payload: tw.value})
		if err != nil {
			return err
		}
		w := &replicaWrite{key: tw.key, next: tw.next, blob: blob, metaRec: newMeta.Marshal()}
		if tw.meta != nil {
			w.prev = encodeVer(tw.meta.Version)
		}
		staged = append(staged, w)
		newMetas = append(newMetas, newMeta)
		keys = append(keys, tw.key)
	}

	unlock := c.lockStripes(keys)
	// Sharding gate: a transaction commits atomically, so a single
	// foreign key fails the whole commit with the redirect error.
	release, err := c.beginWrite(ctx, keys...)
	if err != nil {
		unlock()
		return err
	}
	// Transactional commit records tolerate losing a single drive's
	// write buffer — the paper's design recovers partially-replicated
	// commits from the surviving replicas (§4.4) — so with replication
	// in play they ship write-back and the committer destages them
	// with a trailing flush instead of paying the write-through
	// penalty per batch. Unreplicated deployments have no second copy
	// to recover from and stay write-through.
	sync := wire.SyncWriteThrough
	if c.cfg.Replicas > 1 {
		sync = wire.SyncWriteBack
	}
	err = c.commitWrites(ctx, staged, sync)
	if err == nil {
		// Publish under the stripe locks, like putObject: a concurrent
		// writer must not interleave a newer cache entry between our
		// drive commit and our cache publish.
		for i, w := range staged {
			c.metaCache.Put(w.key, newMetas[i])
			c.objectCache.Put(string(store.ObjectKey(w.key, w.next)),
				&store.Record{Meta: *newMetas[i], Payload: writes[i].value})
			c.metaFlight.Forget(w.key)
		}
	}
	release()
	unlock()
	if err != nil {
		return fmt.Errorf("pesos: tx commit: %w", err)
	}
	n := uint64(len(writes))
	var bytes uint64
	for i, w := range staged {
		c.noteWrite(w.key, len(writes[i].value))
		bytes += uint64(len(writes[i].value))
	}
	c.stats.Puts.Add(n)
	c.stats.WriteBytes.Add(bytes)
	return nil
}

// commitWrites persists a multi-key write set: the writes are grouped
// by placement drive so each drive receives as few sub-operation
// groups as possible (object+meta pairs never split across groups),
// and the per-drive streams run concurrently. Policy checks and
// version planning happened under the VLL locks in CommitTx (or the
// stripe locks in batchPut); the meta compare-and-swap tokens remain
// as the cross-controller backstop.
//
// sync selects the durability each group is shipped with. Write-back
// takes effect only through the group committer, which destages with
// a trailing flush; the direct per-op path always commits
// write-through.
func (c *Controller) commitWrites(ctx context.Context, writes []*replicaWrite, sync wire.SyncMode) error {
	if len(writes) == 0 {
		return nil
	}
	if c.cfg.SerialReplication {
		for _, w := range writes {
			if err := c.writeThrough(ctx, w); err != nil {
				return fmt.Errorf("pesos: tx write %q: %w", w.key, err)
			}
		}
		return nil
	}

	// Group the sub-operation pairs per drive.
	type driveOps struct {
		ops     []wire.BatchOp
		payload int
	}
	perDrive := make(map[int]*driveOps)
	for _, w := range writes {
		for _, di := range c.placement(w.key) {
			b := perDrive[di]
			if b == nil {
				b = &driveOps{}
				perDrive[di] = b
			}
			b.ops = w.appendBatchOps(b.ops)
			b.payload += len(w.blob) + len(w.metaRec)
		}
	}
	drives := make([]int, 0, len(perDrive))
	for di := range perDrive {
		drives = append(drives, di)
	}
	err := c.fanout(drives, func(di int) error {
		b := perDrive[di]
		// Chunk on the batch-op cap and the frame size, keeping each
		// object+meta pair in one atomic group.
		ops := b.ops
		for len(ops) > 0 {
			n, bytes := 0, 0
			for n < len(ops) && n+2 <= wire.MaxBatchOps {
				sz := len(ops[n].Value) + len(ops[n+1].Value)
				if n > 0 && bytes+sz > store.MaxObjectSize {
					break
				}
				bytes += sz
				n += 2
			}
			if err := c.driveBatch(ctx, di, ops[:n], bytes, sync, false); err != nil {
				return fmt.Errorf("core: tx batch to drive %s: %w", c.drives[di].name, err)
			}
			ops = ops[n:]
		}
		return nil
	})
	keys := make([]string, len(writes))
	for i, w := range writes {
		keys[i] = w.key
	}
	return c.replicationFailed(err, keys...)
}
