package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/authority"
	"repro/internal/kinetic/kclient"
	"repro/internal/kinetic/wire"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/policy/lang"
	"repro/internal/store"
)

// PutOptions modifies a put/update request.
type PutOptions struct {
	// PolicyID attaches (or changes to) the given stored policy.
	// Empty keeps the object's current policy.
	PolicyID string
	// Version, when HasVersion, is the client-supplied next version
	// (the nextVersion policy argument). It must be exactly
	// current+1, or 0 for creation.
	Version    int64
	HasVersion bool
	// Certs are certified external facts attached to the request.
	Certs []*authority.Certificate
	// Async defers execution: the unified call shape returns an
	// operation id to poll instead of blocking (v2; §4.1).
	Async bool
}

// GetOptions modifies a get request.
type GetOptions struct {
	// Version selects a historic version when HasVersion; otherwise
	// the latest version is returned.
	Version    int64
	HasVersion bool
	Certs      []*authority.Certificate
}

// DeleteOptions modifies a delete request.
type DeleteOptions struct {
	Certs []*authority.Certificate
	// Async defers execution, as in PutOptions.
	Async bool
}

// encodeVer renders a version as the Kinetic compare-and-swap token
// guarding the metadata record against concurrent controllers.
func encodeVer(v int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

// planVersion applies the write-path preamble shared by every mutation
// shape (single put, batch put, streamed put): load current metadata,
// determine the next version, enforce the dense-monotonic version rule
// and the object's update policy. Callers hold the key's write lock.
func (c *Controller) planVersion(ctx context.Context, sessionKey, key string, opts PutOptions) (meta *store.Meta, next int64, err error) {
	return c.planVersionCtx(ctx, nil, sessionKey, key, opts)
}

// planVersionCtx is planVersion with an optional policy page context
// (batched writes sharing one policy resolve its residual once).
func (c *Controller) planVersionCtx(ctx context.Context, pe *policyEval, sessionKey, key string, opts PutOptions) (meta *store.Meta, next int64, err error) {
	meta, err = c.loadMeta(ctx, key)
	if err != nil && !errors.Is(err, ErrNotFound) {
		return nil, 0, err
	}

	// Determine the next version: explicit from the client, else
	// current+1 (0 for creation).
	switch {
	case opts.HasVersion:
		next = opts.Version
	case meta != nil:
		next = meta.Version + 1
	default:
		next = 0
	}
	// Base integrity rule, independent of policies: versions are
	// dense and monotonic.
	if meta != nil && next != meta.Version+1 {
		return nil, 0, fmt.Errorf("%w: object at version %d, put requests %d",
			ErrBadVersion, meta.Version, next)
	}
	if meta == nil && next != 0 {
		return nil, 0, fmt.Errorf("%w: creation must use version 0, got %d", ErrBadVersion, next)
	}

	// Policy check: an existing object's policy governs updates,
	// including policy changes (§3.1).
	if err := c.checkPolicyCtx(ctx, pe, lang.PermUpdate, sessionKey, key, meta, &next, opts.Certs); err != nil {
		return nil, 0, err
	}
	return meta, next, nil
}

// resolvePolicy determines the policy (id and hash) the new version
// carries: the requested one, else the current version's.
func (c *Controller) resolvePolicy(ctx context.Context, meta *store.Meta, requested string) (string, [32]byte, error) {
	newPolicyID := requested
	if newPolicyID == "" && meta != nil {
		newPolicyID = meta.PolicyID
	}
	var policyHash [32]byte
	if newPolicyID != "" {
		prog, err := c.loadPolicy(ctx, newPolicyID)
		if err != nil {
			return "", policyHash, err
		}
		policyHash = prog.Hash()
	}
	return newPolicyID, policyHash, nil
}

// stageWrite runs the full write plan for one key — version planning,
// policy checks, record encoding — and returns the staged replica
// write plus the record to publish on success. Callers hold the key's
// write lock and are responsible for committing the stage and then
// publishing it.
func (c *Controller) stageWrite(ctx context.Context, sessionKey, key string, value []byte, opts PutOptions) (*replicaWrite, *store.Record, error) {
	return c.stageWriteCtx(ctx, nil, sessionKey, key, value, opts)
}

// stageWriteCtx is stageWrite with an optional policy page context.
func (c *Controller) stageWriteCtx(ctx context.Context, pe *policyEval, sessionKey, key string, value []byte, opts PutOptions) (*replicaWrite, *store.Record, error) {
	if int64(len(value)) > store.MaxObjectSize {
		return nil, nil, store.ErrTooLarge
	}
	c.cost.MoveBytes(len(value)) // request payload crosses into the enclave

	meta, next, err := c.planVersionCtx(ctx, pe, sessionKey, key, opts)
	if err != nil {
		return nil, nil, err
	}
	newPolicyID, policyHash, err := c.resolvePolicy(ctx, meta, opts.PolicyID)
	if err != nil {
		return nil, nil, err
	}

	newMeta := &store.Meta{
		Key:         key,
		Version:     next,
		Size:        int64(len(value)),
		ContentHash: store.HashContent(value),
		PolicyID:    newPolicyID,
		PolicyHash:  policyHash,
	}
	rec := &store.Record{Meta: *newMeta, Payload: value}
	blob, err := c.codec.EncodeRecord(rec)
	if err != nil {
		return nil, nil, err
	}
	w := &replicaWrite{key: key, next: next, blob: blob, metaRec: newMeta.Marshal()}
	if meta != nil {
		w.prev = encodeVer(meta.Version)
	}
	return w, rec, nil
}

// publishWrite installs a committed write in the caches. Callers hold
// the key's write lock. Any in-flight coalesced meta read started
// before this write is detached so readers arriving from now on fetch
// fresh state instead of joining a stale flight.
func (c *Controller) publishWrite(rec *store.Record) {
	m := rec.Meta
	c.metaCache.Put(m.Key, &m)
	c.objectCache.Put(string(store.ObjectKey(m.Key, m.Version)), rec)
	c.metaFlight.Forget(m.Key)
}

// putObject is the write path (§3.2 steps 4–7): policy check, record
// encoding, write-through to every replica, cache update.
func (c *Controller) putObject(ctx context.Context, sessionKey, key string, value []byte, opts PutOptions) (int64, error) {
	// Serialize mutations of this key: concurrent version-less puts
	// become last-writer-wins instead of surfacing CAS conflicts, and
	// record/meta writes of different versions can never interleave.
	lock := c.writeLock(key)
	lock.Lock()
	defer lock.Unlock()

	// Sharding gate: ownership check plus the freeze barrier; the
	// shard read lock is held across the drive commit (see shard.go).
	release, err := c.beginWrite(ctx, key)
	if err != nil {
		return 0, err
	}
	defer release()

	w, rec, err := c.stageWrite(ctx, sessionKey, key, value, opts)
	if err != nil {
		return 0, err
	}

	// Write-through to every replica (§4.5): one atomic batch per
	// replica drive carrying the object record and the metadata record
	// together, all replicas concurrently. See replicate.go.
	if err := c.writeThrough(ctx, w); err != nil {
		return 0, err
	}

	c.publishWrite(rec)
	c.noteWrite(key, len(value))
	c.stats.Puts.Inc()
	c.stats.WriteBytes.Add(uint64(len(value)))
	return w.next, nil
}

// getObject is the read path (§3.2 step 5: policy first, then data,
// each cache-first).
func (c *Controller) getObject(ctx context.Context, sessionKey, key string, opts GetOptions) ([]byte, *store.Meta, error) {
	if err := c.checkOwned(key); err != nil {
		return nil, nil, err
	}
	meta, err := c.loadMeta(ctx, key)
	if err != nil {
		return nil, nil, err
	}
	if err := c.checkPolicy(ctx, lang.PermRead, sessionKey, key, meta, nil, opts.Certs); err != nil {
		return nil, nil, err
	}
	version := meta.Version
	if opts.HasVersion {
		version = opts.Version
	}
	rec, err := c.loadRecord(ctx, key, version)
	if err != nil {
		return nil, nil, err
	}
	if rec.Meta.Chunks > 0 {
		// Streamed objects exceed the buffered message budget; the
		// caller must use the v2 streaming read path.
		return nil, nil, fmt.Errorf("%w: %q v%d is %d bytes; use the streaming read API",
			ErrStreamedObject, key, version, rec.Meta.Size)
	}
	c.cost.MoveBytes(len(rec.Payload)) // response payload leaves the enclave
	c.noteRead(key, len(rec.Payload))
	c.stats.Gets.Inc()
	c.stats.ReadBytes.Add(uint64(len(rec.Payload)))
	m := rec.Meta
	return rec.Payload, &m, nil
}

// deleteObject removes an object and its whole version history
// (including any streamed chunk records), returning the destroyed
// head version.
func (c *Controller) deleteObject(ctx context.Context, sessionKey, key string, opts DeleteOptions) (int64, error) {
	lock := c.writeLock(key)
	lock.Lock()
	defer lock.Unlock()

	release, err := c.beginWrite(ctx, key)
	if err != nil {
		return 0, err
	}
	defer release()

	meta, err := c.loadMeta(ctx, key)
	if err != nil {
		return 0, err
	}
	if err := c.checkPolicy(ctx, lang.PermDelete, sessionKey, key, meta, nil, opts.Certs); err != nil {
		return 0, err
	}
	// One batched delete stream per replica, all replicas concurrently;
	// each stream's first batch leads with the CAS-guarded metadata
	// delete so a concurrent update rejects the destruction before any
	// version record is lost (see deleteReplica).
	placement := c.placement(key)
	targets := placement
	if c.cfg.EC {
		// Erasure-coded shards live across the EC group window, a
		// superset of the replica placement; each drive's chunk-range
		// enumeration collects its data and parity shards (deleteReplica
		// already tolerates drives holding no metadata).
		targets = unionDrives(placement, c.ecGroup(key, c.cfg.ECDataShards+c.cfg.ECParityShards))
	}
	err = c.fanout(targets, func(di int) error {
		return c.deleteReplica(ctx, di, key, meta.Version)
	})
	if err != nil {
		// Some replicas may already have destroyed records (and the
		// metadata leads each batch stream): drop every cache entry so
		// readers observe drive state, not the deleted object. Flights
		// are forgotten first so an in-flight fetch cannot re-install
		// an entry after its removal.
		for v := int64(0); v <= meta.Version; v++ {
			ck := string(store.ObjectKey(key, v))
			c.objectFlight.Forget(ck)
			c.objectCache.Remove(ck)
		}
		return 0, c.replicationFailed(err, key)
	}
	c.metaFlight.Forget(key)
	c.metaCache.Remove(key)
	for v := int64(0); v <= meta.Version; v++ {
		c.objectFlight.Forget(string(store.ObjectKey(key, v)))
	}
	c.noteWrite(key, 0)
	c.stats.Deletes.Inc()
	return meta.Version, nil
}

// listVersions enumerates an object's stored versions (privileged
// clients reading history, §5.3). Governed by the read permission.
// The range read goes through the shared replica read engine like
// every other read: replicas race (or hedge) instead of being tried
// one by one, and the range is drained past the drive's response cap.
func (c *Controller) listVersions(ctx context.Context, sessionKey, key string, certs []*authority.Certificate) ([]int64, error) {
	if err := c.checkOwned(key); err != nil {
		return nil, err
	}
	meta, err := c.loadMeta(ctx, key)
	if err != nil {
		return nil, err
	}
	if err := c.checkPolicy(ctx, lang.PermRead, sessionKey, key, meta, nil, certs); err != nil {
		return nil, err
	}
	start, end := store.ObjectKeyRange(key)
	placement := c.placement(key)
	return readReplicas(ctx, c, placement, func(ctx context.Context, p *drivePool) ([]int64, error) {
		keys, err := c.rangeAll(ctx, p.pick(), start, end)
		if err != nil {
			return nil, err
		}
		out := make([]int64, 0, len(keys))
		for _, k := range keys {
			_, v, err := store.VersionFromObjectKey(k)
			if err == nil {
				out = append(out, v)
			}
		}
		return out, nil
	})
}

// loadMeta returns the newest metadata for key, cache-first with
// replica failover through the configured read engine. Concurrent
// misses on the same key coalesce into one drive round trip.
func (c *Controller) loadMeta(ctx context.Context, key string) (*store.Meta, error) {
	if m, ok := c.metaCache.Get(key); ok {
		return m, nil
	}
	m, shared, err := c.metaFlight.Do(ctx, key,
		func(fctx context.Context) (*store.Meta, error) {
			// Double-check under the flight: a racing miss may have
			// published while this caller queued for leadership.
			if m, ok := c.metaCache.Get(key); ok {
				return m, nil
			}
			return c.fetchMeta(fctx, key)
		},
		// Published only while the flight is still current (a delete
		// calls Forget first, suppressing it) and only if newer: a slow
		// fetch must neither clobber a later version a concurrent
		// writer published nor resurrect a deleted key.
		func(m *store.Meta) {
			c.metaCache.PutIf(key, m, func(cur *store.Meta) bool { return cur.Version < m.Version })
		})
	if shared {
		c.stats.CoalescedReads.Inc()
	}
	return m, err
}

// fetchMeta reads key's metadata off the drives. A malformed copy on
// one replica fails over instead of failing the read.
func (c *Controller) fetchMeta(ctx context.Context, key string) (*store.Meta, error) {
	placement := c.placement(key)
	m, err := readReplicas(ctx, c, placement, func(ctx context.Context, p *drivePool) (*store.Meta, error) {
		cl := p.pick()
		c.chargeDriveIO(0)
		val, _, err := cl.Get(ctx, store.MetaKey(key))
		if errors.Is(err, kclient.ErrNotFound) {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
		}
		if err != nil {
			return nil, err
		}
		return store.UnmarshalMeta(val)
	})
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return nil, err
		}
		return nil, fmt.Errorf("core: all replicas failed reading meta %q: %w", key, err)
	}
	return m, nil
}

// loadRecord returns the record of one object version, cache-first
// with replica failover through the configured read engine, verifying
// payload integrity. Concurrent misses on the same version coalesce
// into one drive round trip.
func (c *Controller) loadRecord(ctx context.Context, key string, version int64) (*store.Record, error) {
	ck := string(store.ObjectKey(key, version))
	if r, ok := c.objectCache.Get(ck); ok {
		return r, nil
	}
	rec, shared, err := c.objectFlight.Do(ctx, ck,
		func(fctx context.Context) (*store.Record, error) {
			if r, ok := c.objectCache.Get(ck); ok {
				return r, nil
			}
			return c.fetchRecord(fctx, key, version)
		},
		// Suppressed by a racing delete's Forget, so a slow fetch
		// cannot re-install a destroyed version record.
		func(r *store.Record) { c.objectCache.Put(ck, r) })
	if shared {
		c.stats.CoalescedReads.Inc()
	}
	return rec, err
}

// fetchRecord reads one version record off the drives. A corrupt copy
// on one replica fails over to a healthy one instead of failing the
// read.
func (c *Controller) fetchRecord(ctx context.Context, key string, version int64) (*store.Record, error) {
	placement := c.placement(key)
	rec, err := readReplicas(ctx, c, placement, func(ctx context.Context, p *drivePool) (*store.Record, error) {
		cl := p.pick()
		c.chargeDriveIO(0)
		val, _, err := cl.Get(ctx, store.ObjectKey(key, version))
		if errors.Is(err, kclient.ErrNotFound) {
			return nil, fmt.Errorf("%w: %q version %d", ErrNotFound, key, version)
		}
		if err != nil {
			return nil, err
		}
		c.cost.MoveBytes(len(val))
		rec, err := c.codec.DecodeRecord(val)
		if err != nil {
			return nil, err
		}
		// Chunk stubs carry no inline payload; their content hash spans
		// the streamed chunks and is verified by the streaming reader.
		if rec.Meta.Chunks > 0 {
			if len(rec.Payload) != 0 {
				return nil, store.ErrCorrupt
			}
			return rec, nil
		}
		if store.HashContent(rec.Payload) != rec.Meta.ContentHash {
			return nil, store.ErrCorrupt
		}
		return rec, nil
	})
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return nil, err
		}
		return nil, fmt.Errorf("core: all replicas failed reading %q v%d: %w", key, version, err)
	}
	return rec, nil
}

// chargeDriveIO charges the enclave tax of one drive round trip: two
// asynchronous syscall hand-offs (send, receive) plus the payload
// crossing the boundary.
func (c *Controller) chargeDriveIO(payload int) {
	c.cost.Syscall()
	c.cost.Syscall()
	if payload > 0 {
		c.cost.MoveBytes(payload)
	}
}

// checkPolicy enforces the object's associated policy for op. meta may
// be nil (object does not exist yet): creation is not governed by any
// object policy. nextVersion, when non-nil, fills the nextVersion
// predicate.
//
// Fast path: policies whose verdict for op depends only on the session
// key (policy.StaticFor — no object state, versions, certificates or
// time) memoize their verdict in the decision cache, so the
// interpreter runs once per (policy, client, op) instead of once per
// request. The policy id is content-addressed, so a changed policy
// keys a fresh verdict by construction; object mutations cannot change
// a static verdict (that is what static means), and PutPolicy still
// clears the cache as a defense-in-depth backstop.
func (c *Controller) checkPolicy(ctx context.Context, op lang.Perm, sessionKey, key string, meta *store.Meta, nextVersion *int64, certs []*authority.Certificate) error {
	return c.checkPolicyCtx(ctx, nil, op, sessionKey, key, meta, nextVersion, certs)
}

// policyEval carries one caller's policy-evaluation context across the
// keys of a scan page, batch or transaction commit: the last resolved
// residual and a reusable request, so a page of objects sharing one
// policy (the 1:M case, §3) resolves it once. It belongs to a single
// session and a single goroutine; it is NOT safe for concurrent use.
type policyEval struct {
	op       lang.Perm
	policyID string
	res      *policy.Residual
	req      policy.Request // scratch, reused across keys
}

// checkPolicyCtx is checkPolicy with an optional page context. pe may
// be nil (single-key callers).
func (c *Controller) checkPolicyCtx(ctx context.Context, pe *policyEval, op lang.Perm, sessionKey, key string, meta *store.Meta, nextVersion *int64, certs []*authority.Certificate) error {
	if c.cfg.DisablePolicies || meta == nil || meta.PolicyID == "" {
		return nil
	}

	// Partial-eval fast path: resolve the session residual — from the
	// page context, the residual cache, or freshly — and evaluate it.
	// Decided residuals subsume the static-verdict decision cache.
	if c.cfg.PolicyPartialEval {
		sctx, span := obs.StartSpan(ctx, "policy_eval")
		res, reused, err := c.residualFor(sctx, pe, op, sessionKey, meta.PolicyID)
		if err != nil {
			span.End()
			return err
		}
		req := buildPolicyRequest(pe, op, key, sessionKey, nextVersion, certs, c.clock())
		dec, evalErr := res.Eval(req, &objectSource{c: c, ctx: sctx})
		_, decided := res.Decided()
		c.stats.PolicyChecks.Inc()
		if reused {
			c.stats.ResidualHits.Inc()
			span.Attr("residual", "hit")
		}
		if !decided {
			c.stats.PolicyEvals.Inc()
		}
		c.stats.IndexSkippedClauses.Add(uint64(dec.Skipped))
		span.End()
		if evalErr != nil {
			return evalErr
		}
		if !dec.Allowed {
			c.stats.PolicyDenials.Inc()
			c.auditDecision(obs.TraceID(ctx), sessionKey, op.String(), key, "deny", dec.Reason, meta.PolicyID)
			return &DeniedError{Op: op.String(), Key: key, Reason: dec.Reason}
		}
		c.auditDecision(obs.TraceID(ctx), sessionKey, op.String(), key, "allow", "", meta.PolicyID)
		return nil
	}

	prog, err := c.loadPolicy(ctx, meta.PolicyID)
	if err != nil {
		return err
	}

	var decKey string
	if c.decisionCache != nil && policy.StaticFor(prog, op) {
		decKey = decisionKey(meta.PolicyID, op, sessionKey)
		if d, ok := c.decisionCache.Get(decKey); ok {
			c.stats.PolicyChecks.Inc()
			c.stats.DecisionHits.Inc()
			if !d.allowed {
				c.stats.PolicyDenials.Inc()
				c.auditDecision(obs.TraceID(ctx), sessionKey, op.String(), key, "deny", d.reason, meta.PolicyID)
				return &DeniedError{Op: op.String(), Key: key, Reason: d.reason}
			}
			c.auditDecision(obs.TraceID(ctx), sessionKey, op.String(), key, "allow", "", meta.PolicyID)
			return nil
		}
	}

	sctx, span := obs.StartSpan(ctx, "policy_eval")
	req := buildPolicyRequest(pe, op, key, sessionKey, nextVersion, certs, c.clock())
	var dec policy.Decision
	if c.cfg.PolicyIndexedOnly {
		dec, err = policy.EvalIndexed(prog, req, &objectSource{c: c, ctx: sctx})
	} else {
		dec, err = policy.Eval(prog, req, &objectSource{c: c, ctx: sctx})
	}
	span.End()
	c.stats.PolicyChecks.Inc()
	c.stats.PolicyEvals.Inc()
	c.stats.IndexSkippedClauses.Add(uint64(dec.Skipped))
	if err != nil {
		return err
	}
	if decKey != "" {
		c.decisionCache.Put(decKey, cachedDecision{allowed: dec.Allowed, reason: dec.Reason})
	}
	if !dec.Allowed {
		c.stats.PolicyDenials.Inc()
		c.auditDecision(obs.TraceID(ctx), sessionKey, op.String(), key, "deny", dec.Reason, meta.PolicyID)
		return &DeniedError{Op: op.String(), Key: key, Reason: dec.Reason}
	}
	c.auditDecision(obs.TraceID(ctx), sessionKey, op.String(), key, "allow", "", meta.PolicyID)
	return nil
}

// residualFor resolves the partial evaluation of (policy, op, session).
// Resolution order: the caller's page context (adjacent keys sharing a
// policy), the EPC-charged residual cache, then a fresh PartialEval of
// the loaded program. reused reports whether a pre-computed residual
// served the check.
func (c *Controller) residualFor(ctx context.Context, pe *policyEval, op lang.Perm, sessionKey, policyID string) (res *policy.Residual, reused bool, err error) {
	if pe != nil && pe.res != nil && pe.policyID == policyID && pe.op == op {
		return pe.res, true, nil
	}
	var rkey string
	if c.residualCache != nil {
		rkey = decisionKey(policyID, op, sessionKey)
		if r, ok := c.residualCache.Get(rkey); ok {
			if pe != nil {
				pe.policyID, pe.op, pe.res = policyID, op, r
			}
			return r, true, nil
		}
	}
	prog, err := c.loadPolicy(ctx, policyID)
	if err != nil {
		return nil, false, err
	}
	r := policy.PartialEval(prog, op, sessionKey)
	if rkey != "" {
		c.residualCache.Put(rkey, r)
	}
	if pe != nil {
		pe.policyID, pe.op, pe.res = policyID, op, r
	}
	return r, false, nil
}

// buildPolicyRequest fills a policy request, reusing the page
// context's scratch request when one is supplied.
func buildPolicyRequest(pe *policyEval, op lang.Perm, key, sessionKey string, nextVersion *int64, certs []*authority.Certificate, now time.Time) *policy.Request {
	req := &policy.Request{}
	if pe != nil {
		pe.req = policy.Request{}
		req = &pe.req
	}
	req.Op = op
	req.ObjectID = key
	req.LogID = LogKeyFor(key)
	req.SessionKey = sessionKey
	req.Certificates = certs
	req.Now = now
	if nextVersion != nil {
		req.NextVersion = *nextVersion
		req.HasNextVersion = true
	}
	return req
}

// decisionKey builds the decision-cache key for a session-static
// verdict. The policy id is its content hash, so the triple fully
// determines the verdict.
func decisionKey(policyID string, op lang.Perm, sessionKey string) string {
	return policyID + "\x00" + string(rune(op)) + "\x00" + sessionKey
}

// objectSource adapts the controller's loaders to the interpreter's
// view of stored objects. Lookups go through the same caches as
// client requests, which is what makes content-based policies
// affordable (§4.2).
type objectSource struct {
	c   *Controller
	ctx context.Context
}

// Info implements policy.ObjectSource.
func (o *objectSource) Info(id string) (policy.ObjectInfo, bool, error) {
	meta, err := o.c.loadMeta(o.ctx, id)
	if errors.Is(err, ErrNotFound) {
		return policy.ObjectInfo{}, false, nil
	}
	if err != nil {
		return policy.ObjectInfo{}, false, err
	}
	return policy.ObjectInfo{
		ID:         id,
		Version:    meta.Version,
		Size:       meta.Size,
		Hash:       meta.ContentHash,
		PolicyHash: meta.PolicyHash,
	}, true, nil
}

// InfoAt implements policy.ObjectSource.
func (o *objectSource) InfoAt(id string, version int64) (policy.ObjectInfo, bool, error) {
	rec, err := o.c.loadRecord(o.ctx, id, version)
	if errors.Is(err, ErrNotFound) {
		return policy.ObjectInfo{}, false, nil
	}
	if err != nil {
		return policy.ObjectInfo{}, false, err
	}
	return policy.ObjectInfo{
		ID:         id,
		Version:    rec.Meta.Version,
		Size:       rec.Meta.Size,
		Hash:       rec.Meta.ContentHash,
		PolicyHash: rec.Meta.PolicyHash,
	}, true, nil
}

// Content implements policy.ObjectSource.
func (o *objectSource) Content(id string, version int64) ([]byte, bool, error) {
	rec, err := o.c.loadRecord(o.ctx, id, version)
	if errors.Is(err, ErrNotFound) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return rec.Payload, true, nil
}

// PutPolicy compiles policy source, persists the compiled program on
// the drives and returns its content-addressed identifier (§3.1:
// compile, cache, persist).
func (c *Controller) PutPolicy(ctx context.Context, src string) (string, error) {
	prog, err := policy.CompileSource(src)
	if err != nil {
		return "", err
	}
	id := policyID(prog)
	blob, err := prog.Marshal()
	if err != nil {
		return "", err
	}
	// Policies fan out to all placement replicas concurrently like any
	// other write-through operation; each replica's put is a one-op
	// group, so a policy store rides the same shared drive batches as
	// concurrent data writes.
	placement := c.placement(id)
	err = c.fanout(placement, func(di int) error {
		// Content-addressed: rewriting the same id is idempotent.
		ops := append(getOps(), wire.BatchOp{
			Op: wire.BatchPut, Key: store.PolicyKey(id), Value: blob,
			NewVersion: []byte{1}, Force: true,
		})
		if err := c.driveBatch(ctx, di, ops, len(blob), wire.SyncWriteThrough, true); err != nil {
			return fmt.Errorf("core: store policy on drive %s: %w", c.drives[di].name, err)
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	c.policyCache.Put(id, prog)
	// Policy-change backstop: decisions and residuals key on the
	// content-addressed policy id, so this is redundant by
	// construction — kept so a future non-content-addressed policy
	// root cannot silently serve stale verdicts. Residuals MUST be
	// cleared alongside verdicts: a session that bound a residual
	// against the old program would otherwise keep enforcing replaced
	// clauses for as long as the entry stays cached.
	if c.decisionCache != nil {
		c.decisionCache.Clear()
	}
	if c.residualCache != nil {
		c.residualCache.Clear()
	}
	return id, nil
}

// GetPolicySource returns the canonical text of a stored policy —
// clients auditing what a policy id means.
func (c *Controller) GetPolicySource(ctx context.Context, id string) (string, error) {
	prog, err := c.loadPolicy(ctx, id)
	if err != nil {
		return "", err
	}
	return prog.Source()
}

// loadPolicy returns a compiled policy by id, cache-first with
// replica failover. Concurrent misses on one policy id — the common
// case when a hot policy serves many objects (1:M, §3) and falls out
// of cache — coalesce into a single drive round trip.
func (c *Controller) loadPolicy(ctx context.Context, id string) (*policy.Program, error) {
	if p, ok := c.policyCache.Get(id); ok {
		return p, nil
	}
	prog, shared, err := c.policyFlight.Do(ctx, id,
		func(fctx context.Context) (*policy.Program, error) {
			if p, ok := c.policyCache.Get(id); ok {
				return p, nil
			}
			return c.fetchPolicy(fctx, id)
		},
		func(p *policy.Program) { c.policyCache.Put(id, p) })
	if shared {
		c.stats.CoalescedReads.Inc()
	}
	return prog, err
}

// fetchPolicy reads a compiled policy off the drives, verifying its
// content address.
func (c *Controller) fetchPolicy(ctx context.Context, id string) (*policy.Program, error) {
	placement := c.placement(id)
	var lastErr error
	for _, di := range placement {
		cl := c.drives[di].pick()
		c.chargeDriveIO(0)
		val, _, err := cl.Get(ctx, store.PolicyKey(id))
		if errors.Is(err, kclient.ErrNotFound) {
			return nil, fmt.Errorf("%w: %q", ErrNoSuchPolicy, id)
		}
		if err != nil {
			lastErr = err
			continue
		}
		prog, err := policy.Unmarshal(val)
		if err != nil {
			return nil, err
		}
		// Content addressing doubles as integrity: the stored program
		// must hash back to its id.
		if policyID(prog) != id {
			return nil, fmt.Errorf("core: policy %q fails integrity check", id)
		}
		return prog, nil
	}
	return nil, fmt.Errorf("core: all replicas failed reading policy %q: %w", id, lastErr)
}

// verifyStored recomputes an object's integrity evidence for the
// attestation-style verification interface (§1: clients can verify
// storage operations): content hash and policy hash at a version.
func (c *Controller) verifyStored(ctx context.Context, key string, version int64) (*store.Meta, error) {
	rec, err := c.loadRecord(ctx, key, version)
	if err != nil {
		return nil, err
	}
	if rec.Meta.Chunks > 0 {
		// Streamed version: the hash spans the chunk records.
		if err := c.verifyChunks(ctx, &rec.Meta); err != nil {
			return nil, err
		}
	} else if sha256.Sum256(rec.Payload) != rec.Meta.ContentHash {
		return nil, store.ErrCorrupt
	}
	m := rec.Meta
	return &m, nil
}
