package core

import (
	"math/rand"
	"testing"
)

// TestSubstituteDeadProperties fuzzes the slot-stable substitution
// that both replica placement and EC grouping build on: for random
// cluster sizes, window sizes and dead masks, the result must keep
// its length, never repeat a drive, avoid every dead drive while live
// spares remain, keep live base members in their exact slots, and be
// identical across calls for an unchanged mask.
func TestSubstituteDeadProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		n := 2 + rng.Intn(14)
		size := 1 + rng.Intn(n)
		primary := rng.Intn(n)
		// Kill a random subset, always leaving at least one drive.
		var mask uint64
		deadCount := rng.Intn(n)
		for _, di := range rng.Perm(n)[:deadCount] {
			mask |= 1 << uint(di)
		}

		base := substituteDead(primary, n, size, 0)
		out := substituteDead(primary, n, size, mask)
		if len(out) != size {
			t.Fatalf("n=%d size=%d mask=%b: len=%d", n, size, mask, len(out))
		}
		seen := map[int]bool{}
		for _, di := range out {
			if di < 0 || di >= n {
				t.Fatalf("n=%d size=%d mask=%b: drive %d out of range", n, size, mask, di)
			}
			if seen[di] {
				t.Fatalf("n=%d size=%d mask=%b: drive %d twice in %v", n, size, mask, di, out)
			}
			seen[di] = true
		}
		// Slot stability: live base members keep their slots.
		for s, di := range base {
			if mask&(1<<uint(di)) == 0 && out[s] != di {
				t.Fatalf("n=%d size=%d mask=%b: live slot %d moved %d -> %d", n, size, mask, s, di, out[s])
			}
		}
		// Dead drives appear only when no live spare was left to take
		// the slot (the degraded full-cluster case).
		live := n - deadCount
		for s, di := range out {
			if mask&(1<<uint(di)) != 0 && live >= size {
				t.Fatalf("n=%d size=%d mask=%b live=%d: slot %d still on dead drive %d (%v)",
					n, size, mask, live, s, di, out)
			}
		}
		// Determinism: the same mask re-derives the same layout.
		again := substituteDead(primary, n, size, mask)
		for s := range out {
			if again[s] != out[s] {
				t.Fatalf("n=%d size=%d mask=%b: unstable layout %v vs %v", n, size, mask, out, again)
			}
		}
	}
}

// TestECGroupPrefixesPlacement pins the structural relationship the
// EC design relies on: the replica placement drives are a prefix of
// the k+m group window, so stub and metadata records always live on
// group members.
func TestECGroupPrefixesPlacement(t *testing.T) {
	h := newHarness(t, 8, ecConfig)
	for _, key := range []string{"a", "b", "some/long/key", "zzz"} {
		placement := h.ctl.placement(key)
		group := h.ctl.ecGroup(key, 6)
		for i, di := range placement {
			if group[i] != di {
				t.Fatalf("key %q: placement %v is not a prefix of group %v", key, placement, group)
			}
		}
	}
}
