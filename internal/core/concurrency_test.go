package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentPlainPuts: version-less updates from many goroutines
// must all succeed (last-writer-wins) and produce a dense, gap-free
// version history — the §3 semantics where every operation replaces
// the object in its entirety.
func TestConcurrentPlainPuts(t *testing.T) {
	h := newHarness(t, 1, nil)
	s := h.ctl.Session("w")
	ctx := context.Background()

	const writers, iters = 8, 20
	var wg sync.WaitGroup
	errCh := make(chan error, writers*iters)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := s.Put(ctx, "shared", []byte(fmt.Sprintf("w%d-i%d", w, i)), PutOptions{}); err != nil {
					errCh <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("concurrent put failed: %v", err)
	}

	vers, err := s.ListVersions(ctx, "shared", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vers) != writers*iters {
		t.Fatalf("history has %d versions, want %d", len(vers), writers*iters)
	}
	for i, v := range vers {
		if v != int64(i) {
			t.Fatalf("version gap at %d: %v", i, vers[:i+1])
		}
	}
	// Every stored version passes its integrity check.
	for _, v := range []int64{0, int64(len(vers) / 2), int64(len(vers) - 1)} {
		if _, err := s.Verify(ctx, "shared", v); err != nil {
			t.Fatalf("verify v%d: %v", v, err)
		}
	}
}

// TestConcurrentMixedOps: reads, writes and deletes racing on a small
// key set must never corrupt records (integrity errors) even though
// individual operations may observe NotFound.
func TestConcurrentMixedOps(t *testing.T) {
	h := newHarness(t, 2, func(c *Config) { c.Replicas = 2 })
	s := h.ctl.Session("w")
	ctx := context.Background()
	keys := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				k := keys[(w+i)%len(keys)]
				switch i % 4 {
				case 0, 1:
					if _, err := s.Put(ctx, k, []byte(fmt.Sprintf("%d-%d", w, i)), PutOptions{}); err != nil {
						t.Errorf("put: %v", err)
					}
				case 2:
					_, _, err := s.Get(ctx, k, GetOptions{})
					if err != nil && !isNotFound(err) {
						t.Errorf("get: %v", err)
					}
				case 3:
					if err := s.Delete(ctx, k, DeleteOptions{}); err != nil && !isNotFound(err) {
						t.Errorf("delete: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func isNotFound(err error) bool { return errors.Is(err, ErrNotFound) }
