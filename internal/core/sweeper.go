package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/store"
)

// sweepDeepEvery makes every Nth full keyspace pass a deep pass:
// every key goes through full record-level repair instead of the
// cheap version-agreement fast path. Deep passes are what catch a
// lost or corrupt chunk record hiding behind an intact stub and an
// agreeing metadata version.
const sweepDeepEvery = 4

// SweepTickReport summarizes one incremental sweeper tick.
type SweepTickReport struct {
	// Scanned is the number of keys examined this tick.
	Scanned int
	// Repaired counts keys that needed records rewritten.
	Repaired int
	// Failed counts keys whose repair errored (retried next pass).
	Failed int
	// RestoredRecords / RestoredBytes total the rewritten records.
	RestoredRecords int
	RestoredBytes   int64
	// Cursor is the resume position after this tick.
	Cursor string
	// Wrapped reports that the tick finished a full keyspace pass.
	Wrapped bool
	// Deep reports that this tick belonged to a deep pass.
	Deep bool
}

// SweeperStatus is the sweeper's cumulative state for /v1/status.
type SweeperStatus struct {
	Enabled    bool      `json:"enabled"`
	Cursor     string    `json:"cursor"`
	Generation uint64    `json:"generation"`
	Ticks      uint64    `json:"ticks"`
	Scanned    uint64    `json:"keys_scanned"`
	Repaired   uint64    `json:"keys_repaired"`
	Restored   uint64    `json:"records_restored"`
	Bytes      uint64    `json:"bytes_restored"`
	Failures   uint64    `json:"failures"`
	LastTick   time.Time `json:"last_tick"`
}

// sweeperState is the continuous anti-entropy sweeper's resumable
// position plus lifetime counters. One tick runs at a time (runMu);
// the cursor is the last client key processed, so a controller can
// sweep an arbitrarily large keyspace in bounded per-tick increments.
type sweeperState struct {
	runMu sync.Mutex // serializes ticks

	mu         sync.Mutex
	cursor     string
	generation uint64
	ticks      uint64
	scanned    uint64
	repaired   uint64
	restored   uint64
	bytes      uint64
	failures   uint64
	lastTick   time.Time

	kick chan struct{}
}

func newSweeperState() *sweeperState {
	return &sweeperState{kick: make(chan struct{}, 1)}
}

// kickSweeper wakes the background sweep loop out of its interval
// wait (detector transitions call this so re-replication starts
// immediately rather than a tick later). Harmless without a loop.
func (c *Controller) kickSweeper() {
	if sw := c.sweeper; sw != nil {
		select {
		case sw.kick <- struct{}{}:
		default:
		}
	}
}

// SweeperStatus reports the sweeper's cursor and lifetime counters.
func (c *Controller) SweeperStatus() SweeperStatus {
	sw := c.sweeper
	if sw == nil {
		return SweeperStatus{}
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return SweeperStatus{
		Enabled:    c.cfg.SweepInterval > 0,
		Cursor:     sw.cursor,
		Generation: sw.generation,
		Ticks:      sw.ticks,
		Scanned:    sw.scanned,
		Repaired:   sw.repaired,
		Restored:   sw.restored,
		Bytes:      sw.bytes,
		Failures:   sw.failures,
		LastTick:   sw.lastTick,
	}
}

// SweepTick runs one bounded increment of the continuous anti-entropy
// sweep: it enumerates at most SweepKeysPerTick keys after the
// resumable cursor, verifies each with the cheap version-agreement
// fast path (full record repair only where replicas diverge, or on
// every sweepDeepEvery'th generation), and stops early once
// SweepBytesPerTick of records have been rewritten. Neither the
// enumeration nor the verification reads the whole keyspace — per
// tick cost is O(keys-per-tick × replicas) version reads.
func (c *Controller) SweepTick(ctx context.Context) (*SweepTickReport, error) {
	sw := c.sweeper
	if sw == nil {
		return nil, fmt.Errorf("core: controller has no sweeper")
	}
	sw.runMu.Lock()
	defer sw.runMu.Unlock()

	maxKeys := c.cfg.SweepKeysPerTick
	if maxKeys <= 0 {
		maxKeys = 256
	}
	maxBytes := c.cfg.SweepBytesPerTick
	if maxBytes <= 0 {
		maxBytes = 4 << 20
	}

	sw.mu.Lock()
	cursor, gen := sw.cursor, sw.generation
	sw.mu.Unlock()

	report := &SweepTickReport{Deep: gen%sweepDeepEvery == 0}
	keys, windowEnd, wrapped, err := c.sweepKeysAfter(ctx, cursor, maxKeys)
	if err != nil {
		return report, err
	}
	if len(keys) > maxKeys {
		// The union across drives can exceed one drive's window when
		// replicas hold disjoint keys. Hard-cap the tick at its key
		// budget and resume right after the last key processed; the
		// overflow re-enumerates next tick.
		keys = keys[:maxKeys]
		windowEnd = ""
		wrapped = false
	}
	last := cursor
	for _, key := range keys {
		if err := ctx.Err(); err != nil {
			wrapped = false
			break
		}
		report.Scanned++
		last = key
		if !report.Deep && c.replicasConverged(ctx, key) {
			continue
		}
		rep, err := c.sweepKey(ctx, key)
		if err != nil {
			report.Failed++
			continue
		}
		if rep.Restored > 0 {
			report.Repaired++
			report.RestoredRecords += rep.Restored
			report.RestoredBytes += rep.RestoredBytes
		}
		if report.RestoredBytes >= maxBytes {
			// Byte budget exhausted: yield; the cursor resumes here.
			wrapped = false
			break
		}
	}
	if wrapped {
		report.Cursor = ""
	} else if report.Scanned < len(keys) || windowEnd == "" {
		// Stopped early (budget or cancellation): resume after the
		// last key actually processed.
		report.Cursor = last
	} else {
		report.Cursor = windowEnd
	}
	report.Wrapped = wrapped

	sw.mu.Lock()
	sw.cursor = report.Cursor
	if wrapped {
		sw.generation++
	}
	sw.ticks++
	sw.scanned += uint64(report.Scanned)
	sw.repaired += uint64(report.Repaired)
	sw.restored += uint64(report.RestoredRecords)
	sw.bytes += uint64(report.RestoredBytes)
	sw.failures += uint64(report.Failed)
	sw.lastTick = c.clock()
	sw.mu.Unlock()

	c.stats.SweepTicks.Inc()
	if wrapped {
		c.stats.RepairSweeps.Inc()
	}
	return report, nil
}

// sweepKeysAfter enumerates the next window of stored client keys
// strictly after cursor, consulting every live drive so a degraded
// replica cannot hide a key. It returns the window's keys (sorted,
// owned ranges only), the highest key the window is guaranteed to
// cover (the resume cursor), and whether the enumeration reached the
// end of the keyspace.
func (c *Controller) sweepKeysAfter(ctx context.Context, cursor string, limit int) (keys []string, windowEnd string, wrapped bool, err error) {
	start, end := store.MetaKeyRange("")
	if cursor != "" {
		// Client keys exclude NUL, so appending one yields the least
		// drive key strictly greater than MetaKey(cursor).
		start = append(store.MetaKey(cursor), 0)
	}
	mask := c.deadMask.Load()
	seen := make(map[string]bool)
	consulted, failures := 0, 0
	var lastErr error
	full := false
	for i, p := range c.drives {
		if mask&(1<<uint(i)) != 0 {
			continue // dead drives cannot extend coverage
		}
		consulted++
		c.chargeDriveIO(0)
		dks, err := p.pick().GetKeyRange(ctx, start, end, true, false, limit)
		if err != nil {
			failures++
			lastErr = err
			continue
		}
		for _, dk := range dks {
			if len(dk) >= 2 {
				seen[string(dk[2:])] = true
			}
		}
		if len(dks) == limit {
			// This drive has more keys beyond the window; the
			// guaranteed-covered prefix ends at the smallest such
			// boundary across drives.
			boundary := string(dks[len(dks)-1][2:])
			if !full || boundary < windowEnd {
				windowEnd = boundary
			}
			full = true
		}
	}
	if consulted == 0 || failures == consulted {
		return nil, "", false, fmt.Errorf("core: sweep enumeration failed on all %d live drives: %w", consulted, lastErr)
	}
	for k := range seen {
		if full && k > windowEnd {
			continue // beyond the guaranteed window; next tick re-enumerates
		}
		if !c.owns(k) {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, windowEnd, !full, nil
}

// replicasConverged is the sweeper's fast path: version-only reads
// establishing that every placement replica agrees on the metadata
// version and holds the newest object record. No payload moves; a
// healthy key costs 2×replicas version probes.
func (c *Controller) replicasConverged(ctx context.Context, key string) bool {
	// The probes below attest the replicated records only. An
	// erasure-coded object's shards live across the wider EC group, so
	// while any drive of the key's group window is dead the fast path
	// cannot vouch for the shards — fall through to the full repair,
	// which probes every shard home. (Shard loss with no dead drive,
	// e.g. an erased-and-revived drive, is caught by the periodic deep
	// pass, like replicated chunk records.)
	if c.cfg.EC {
		if mask := c.deadMask.Load(); mask != 0 {
			window := c.cfg.ECDataShards + c.cfg.ECParityShards
			for _, di := range store.Placement(key, len(c.drives), window) {
				if mask&(1<<uint(di)) != 0 {
					return false
				}
			}
		}
	}
	placement := c.placement(key)
	var ver []byte
	for _, di := range placement {
		c.chargeDriveIO(0)
		v, err := c.drives[di].pick().GetVersion(ctx, store.MetaKey(key))
		if err != nil {
			return false
		}
		if ver == nil {
			ver = v
		} else if !bytes.Equal(ver, v) {
			return false
		}
	}
	if len(ver) != 8 {
		return false
	}
	objKey := store.ObjectKey(key, int64(binary.BigEndian.Uint64(ver)))
	for _, di := range placement {
		c.chargeDriveIO(0)
		if _, err := c.drives[di].pick().GetVersion(ctx, objKey); err != nil {
			return false
		}
	}
	return true
}

// startMaintenance launches the background detector and sweeper loops
// when their intervals are configured. Standby controllers defer this
// until Activate promotes them — a standby must not write to drives
// it does not own.
func (c *Controller) startMaintenance() {
	c.bgMu.Lock()
	defer c.bgMu.Unlock()
	if c.bgCancel != nil {
		return
	}
	detEvery, sweepEvery := c.cfg.DetectorInterval, c.cfg.SweepInterval
	if detEvery <= 0 && sweepEvery <= 0 {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.bgCancel = cancel
	if detEvery > 0 {
		c.bgWG.Add(1)
		go func() {
			defer c.bgWG.Done()
			t := time.NewTicker(detEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					c.DetectorTick(ctx)
				}
			}
		}()
	}
	if sweepEvery > 0 {
		c.bgWG.Add(1)
		go func() {
			defer c.bgWG.Done()
			t := time.NewTicker(sweepEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
				case <-c.sweeper.kick:
				}
				if _, err := c.SweepTick(ctx); err != nil && ctx.Err() != nil {
					return
				}
			}
		}()
	}
}

// stopMaintenance cancels the background loops and waits them out.
func (c *Controller) stopMaintenance() {
	c.bgMu.Lock()
	cancel := c.bgCancel
	c.bgCancel = nil
	c.bgMu.Unlock()
	if cancel != nil {
		cancel()
		c.bgWG.Wait()
	}
}
