package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func fastHarness(t *testing.T) *harness {
	t.Helper()
	return newHarness(t, 1, func(c *Config) { c.PolicyPartialEval = true })
}

// TestPartialEvalMatchesInterpreter runs the same guarded workload on
// a partial-eval controller and an interpreter-baseline controller and
// requires identical allow/deny outcomes end to end.
func TestPartialEvalMatchesInterpreter(t *testing.T) {
	ctx := context.Background()
	src := "read :- sessionKeyIs(k'a11ce') or sessionKeyIs(k'0b')\n" +
		"update :- sessionKeyIs(k'a11ce') and currVersion(this, V) and nextVersion(V + 1)"
	type outcome struct {
		create, update, selfRead, otherRead, stranger error
	}
	run := func(partial bool) outcome {
		h := newHarness(t, 1, func(c *Config) { c.PolicyPartialEval = partial })
		alice := h.ctl.Session("a11ce")
		bob := h.ctl.Session("0b")
		eve := h.ctl.Session("e4e")
		pid, err := h.ctl.PutPolicy(ctx, src)
		if err != nil {
			t.Fatal(err)
		}
		var o outcome
		_, o.create = alice.Put(ctx, "k", []byte("v0"), PutOptions{PolicyID: pid})
		_, o.update = alice.Put(ctx, "k", []byte("v1"), PutOptions{})
		_, _, o.selfRead = alice.Get(ctx, "k", GetOptions{})
		_, _, o.otherRead = bob.Get(ctx, "k", GetOptions{})
		_, _, o.stranger = eve.Get(ctx, "k", GetOptions{})
		return o
	}
	fast, slow := run(true), run(false)
	pairs := []struct {
		name       string
		fast, slow error
	}{
		{"create", fast.create, slow.create},
		{"update", fast.update, slow.update},
		{"selfRead", fast.selfRead, slow.selfRead},
		{"otherRead", fast.otherRead, slow.otherRead},
		{"stranger", fast.stranger, slow.stranger},
	}
	for _, p := range pairs {
		if (p.fast == nil) != (p.slow == nil) ||
			errors.Is(p.fast, ErrDenied) != errors.Is(p.slow, ErrDenied) {
			t.Fatalf("%s: partial=%v interpreter=%v", p.name, p.fast, p.slow)
		}
	}
	if fast.stranger == nil || !errors.Is(fast.stranger, ErrDenied) {
		t.Fatalf("stranger read should be denied, got %v", fast.stranger)
	}
}

// TestPutPolicyClearsResiduals pins the invalidation fix: replacing the
// policy root must drop cached residual programs, not only cached
// verdicts — a stale residual would keep enforcing the old clauses for
// the rest of the session.
func TestPutPolicyClearsResiduals(t *testing.T) {
	h := fastHarness(t)
	ctx := context.Background()
	s := h.ctl.Session("a11ce")
	pid, err := h.ctl.PutPolicy(ctx, "read :- sessionKeyIs(U) and currVersion(this, V)\nupdate :- sessionKeyIs(U)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(ctx, "k", []byte("v"), PutOptions{PolicyID: pid}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(ctx, "k", GetOptions{}); err != nil {
		t.Fatal(err)
	}
	if h.ctl.residualCache.Len() == 0 {
		t.Fatal("read did not populate the residual cache")
	}
	if _, err := h.ctl.PutPolicy(ctx, "read :- eq(1, 2)\nupdate :- sessionKeyIs(U)"); err != nil {
		t.Fatal(err)
	}
	if n := h.ctl.residualCache.Len(); n != 0 {
		t.Fatalf("residual cache holds %d entries after PutPolicy, want 0", n)
	}
}

// TestReplacePolicyMidSessionRace swaps an object's policy while
// concurrent readers hold page-level policyEval contexts. Run under
// -race this exercises the residual resolution chain; the assertion is
// that decisions always follow the policy recorded in the object's
// metadata — content-addressed ids make a stale residual unreachable.
func TestReplacePolicyMidSessionRace(t *testing.T) {
	h := fastHarness(t)
	ctx := context.Background()
	owner := h.ctl.Session("a11ce")
	outsider := h.ctl.Session("0b")

	openPol, err := h.ctl.PutPolicy(ctx, "read :- sessionKeyIs(U)\nupdate :- sessionKeyIs(k'a11ce')")
	if err != nil {
		t.Fatal(err)
	}
	closedPol, err := h.ctl.PutPolicy(ctx, "read :- sessionKeyIs(k'a11ce')\nupdate :- sessionKeyIs(k'a11ce')")
	if err != nil {
		t.Fatal(err)
	}
	const nKeys = 8
	for i := 0; i < nKeys; i++ {
		if _, err := owner.Put(ctx, fmt.Sprintf("r/%d", i), []byte("v"), PutOptions{PolicyID: openPol}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, _, err := outsider.Get(ctx, fmt.Sprintf("r/%d", i%nKeys), GetOptions{})
				if err != nil && !errors.Is(err, ErrDenied) {
					t.Errorf("outsider read: %v", err)
					return
				}
			}
		}()
	}
	// Flip every key to the closed policy while the readers run.
	for i := 0; i < nKeys; i++ {
		if _, err := owner.Put(ctx, fmt.Sprintf("r/%d", i), []byte("v2"), PutOptions{PolicyID: closedPol}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// Steady state after the swap: the outsider must be denied on every
	// key, even though residuals for the open policy were cached for
	// this very session.
	for i := 0; i < nKeys; i++ {
		if _, _, err := outsider.Get(ctx, fmt.Sprintf("r/%d", i), GetOptions{}); !errors.Is(err, ErrDenied) {
			t.Fatalf("key r/%d readable after policy swap: %v", i, err)
		}
	}
	if _, _, err := owner.Get(ctx, "r/0", GetOptions{}); err != nil {
		t.Fatalf("owner read after swap: %v", err)
	}
}

// TestPolicyCountersExported checks the new stats surface: evaluation,
// residual-reuse, and index-skip counters move under a policy-filtered
// scan workload.
func TestPolicyCountersExported(t *testing.T) {
	h := fastHarness(t)
	ctx := context.Background()
	s := h.ctl.Session("a11ce")
	// Session-guarded clauses ahead of an open versioned clause: the
	// distractors are killed by partial eval, and the surviving clause
	// needs the drive (currVersion), so every check runs a residual.
	pid, err := h.ctl.PutPolicy(ctx,
		"read :- sessionKeyIs(k'aa') or sessionKeyIs(k'bb') or sessionKeyIs(U) and currVersion(this, V) and ge(V, 0)\n"+
			"update :- sessionKeyIs(U)")
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	for i := 0; i < n; i++ {
		if _, err := s.Put(ctx, fmt.Sprintf("c/%d", i), []byte("v"), PutOptions{PolicyID: pid}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Scan(ctx, ScanOptions{Prefix: "c/", Limit: n}); err != nil {
		t.Fatal(err)
	}
	st := h.ctl.stats.Snapshot()
	if st.PolicyEvals == 0 {
		t.Fatal("PolicyEvals did not move")
	}
	if st.ResidualHits == 0 {
		t.Fatal("ResidualHits did not move: scan page should reuse one residual across keys")
	}
	if st.IndexSkippedClauses == 0 {
		t.Fatal("IndexSkippedClauses did not move: partial eval kills the distractor clauses")
	}
}
