package core

import (
	"bytes"
	"context"
	"crypto/rand"
	"fmt"
	"net"
	"sync/atomic"
	"testing"

	"repro/internal/enclave/attest"
	"repro/internal/kinetic"
	"repro/internal/kinetic/wire"
	"repro/internal/netx"
	"repro/internal/store"
)

// TestPutIssuesOneBatchPerReplica pins the wire shape of the write
// path: one atomic batch request per replica drive carrying exactly
// the object record and the metadata record, no singleton puts.
func TestPutIssuesOneBatchPerReplica(t *testing.T) {
	h := newHarness(t, 3, func(c *Config) { c.Replicas = 3 })
	s := h.ctl.Session("w")
	if _, err := s.Put(context.Background(), "k", []byte("v"), PutOptions{}); err != nil {
		t.Fatal(err)
	}
	for di, d := range h.drives {
		st := d.Stats()
		if got := st.Batches.Load(); got != 1 {
			t.Errorf("drive %d: %d batches, want exactly 1", di, got)
		}
		if got := st.BatchOps.Load(); got != 2 {
			t.Errorf("drive %d: %d batch sub-ops, want 2 (object+meta)", di, got)
		}
		if got := st.Puts.Load(); got != 0 {
			t.Errorf("drive %d: %d singleton puts, want 0", di, got)
		}
	}
}

// TestSerialReplicationMode keeps the measured baseline functional:
// the legacy serial-singleton path must still replicate correctly.
func TestSerialReplicationMode(t *testing.T) {
	h := newHarness(t, 2, func(c *Config) {
		c.Replicas = 2
		c.SerialReplication = true
	})
	s := h.ctl.Session("w")
	ctx := context.Background()
	if _, err := s.Put(ctx, "k", []byte("v"), PutOptions{}); err != nil {
		t.Fatal(err)
	}
	val, meta, err := s.Get(ctx, "k", GetOptions{})
	if err != nil || !bytes.Equal(val, []byte("v")) || meta.Version != 0 {
		t.Fatalf("get: %q %+v %v", val, meta, err)
	}
	for di, d := range h.drives {
		if got := d.Stats().Batches.Load(); got != 0 {
			t.Errorf("drive %d: serial mode issued %d batches", di, got)
		}
		if got := d.Stats().Puts.Load(); got != 2 {
			t.Errorf("drive %d: %d puts, want 2 (object+meta)", di, got)
		}
	}
}

// TestTxCommitBatchesWrites: a committed transaction's writes go out
// as batches (object+meta pairs grouped per drive), not singleton
// puts, and read back correctly.
func TestTxCommitBatchesWrites(t *testing.T) {
	h := newHarness(t, 2, func(c *Config) { c.Replicas = 2 })
	s := h.ctl.Session("w")
	ctx := context.Background()

	tx := s.CreateTx()
	for i := 0; i < 4; i++ {
		if err := s.AddWrite(tx, fmt.Sprintf("txk%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CommitTx(ctx, tx); err != nil {
		t.Fatalf("commit: %v", err)
	}
	for i := 0; i < 4; i++ {
		val, meta, err := s.Get(ctx, fmt.Sprintf("txk%d", i), GetOptions{})
		if err != nil || !bytes.Equal(val, []byte(fmt.Sprintf("v%d", i))) || meta.Version != 0 {
			t.Fatalf("get txk%d: %q %+v %v", i, val, meta, err)
		}
	}
	for di, d := range h.drives {
		if d.Stats().Puts.Load() != 0 {
			t.Errorf("drive %d: tx commit used %d singleton puts", di, d.Stats().Puts.Load())
		}
		// Both drives hold all 4 keys (replicas=2 of 2 drives); the 8
		// sub-op pairs must arrive in at most a handful of batches, not
		// one message per record.
		if got := d.Stats().BatchOps.Load(); got != 8 {
			t.Errorf("drive %d: %d batch sub-ops, want 8", di, got)
		}
		if got := d.Stats().Batches.Load(); got != 1 {
			t.Errorf("drive %d: tx writes split into %d batches, want 1", di, got)
		}
	}
}

// killableHarness is a controller over drives whose network endpoints
// can be killed (server closed, dial refused) and revived, simulating
// a drive dropping off the fabric mid-operation.
type killableHarness struct {
	ctl     *Controller
	drives  []*kinetic.Drive
	servers []*kinetic.Server
	slots   []atomic.Pointer[netx.Listener]
}

func newKillableHarness(t *testing.T, nDrives int, mutate func(*Config)) *killableHarness {
	t.Helper()
	h := &killableHarness{
		drives:  make([]*kinetic.Drive, nDrives),
		servers: make([]*kinetic.Server, nDrives),
		slots:   make([]atomic.Pointer[netx.Listener], nDrives),
	}
	secrets := &attest.Secrets{}
	if _, err := rand.Read(secrets.ObjectKey[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := rand.Read(secrets.AdminSeed[:]); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Replicas: 1, Encrypt: true, TakeOver: true, Secrets: secrets}
	for i := 0; i < nDrives; i++ {
		i := i
		name := fmt.Sprintf("d%d", i)
		h.drives[i] = kinetic.NewDrive(kinetic.Config{Name: name})
		ln := netx.NewListener(name)
		h.slots[i].Store(ln)
		h.servers[i] = kinetic.Serve(h.drives[i], ln, nil)
		cfg.Drives = append(cfg.Drives, DriveEndpoint{
			Name: name,
			Dial: func(ctx context.Context) (net.Conn, error) {
				ln := h.slots[i].Load()
				if ln == nil {
					return nil, fmt.Errorf("drive %s is down", name)
				}
				return ln.DialContext(ctx)
			},
			Conns: 2,
		})
		secrets.Drives = append(secrets.Drives, attest.DriveCredential{
			Address: name, Identity: kinetic.DefaultAdminIdentity, Key: kinetic.DefaultAdminKey,
		})
	}
	if mutate != nil {
		mutate(&cfg)
	}
	ctl, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatalf("controller: %v", err)
	}
	h.ctl = ctl
	t.Cleanup(func() {
		ctl.Close()
		for _, s := range h.servers {
			if s != nil {
				s.Close()
			}
		}
	})
	return h
}

// kill closes drive di's server (tearing down live connections) and
// makes new dials fail.
func (h *killableHarness) kill(di int) {
	h.slots[di].Store(nil)
	h.servers[di].Close()
	h.servers[di] = nil
}

// revive brings drive di back on a fresh listener, its store intact.
func (h *killableHarness) revive(di int) {
	ln := netx.NewListener(h.drives[di].Name())
	h.servers[di] = kinetic.Serve(h.drives[di], ln, nil)
	h.slots[di].Store(ln)
}

// driveMeta reads key's metadata record directly off a drive.
func (h *killableHarness) driveMeta(t *testing.T, di int, key string) (*store.Meta, bool) {
	t.Helper()
	req := &wire.Message{Type: wire.TGet, Key: store.MetaKey(key), User: AdminIdentity}
	req.Sign(h.ctl.adminKeyFor(h.drives[di].Name()))
	resp := h.drives[di].Handle(req)
	if resp.Status == wire.StatusNotFound {
		return nil, false
	}
	if resp.Status != wire.StatusOK {
		t.Fatalf("drive %d meta read: %v", di, resp.Status)
	}
	m, err := store.UnmarshalMeta(resp.Value)
	if err != nil {
		t.Fatalf("drive %d meta decode: %v", di, err)
	}
	return m, true
}

// deleteRaw force-deletes a raw key directly off one drive, simulating
// a degraded replica that lost a record before repair.
func (h *killableHarness) deleteRaw(t *testing.T, di int, key []byte) {
	t.Helper()
	req := &wire.Message{Type: wire.TDelete, Key: key, Force: true, User: AdminIdentity}
	req.Sign(h.ctl.adminKeyFor(h.drives[di].Name()))
	if resp := h.drives[di].Handle(req); resp.Status != wire.StatusOK {
		t.Fatalf("drive %d raw delete: %v", di, resp.Status)
	}
}

// driveHasObject reports whether a drive holds key's record at version.
func (h *killableHarness) driveHasObject(t *testing.T, di int, key string, version int64) bool {
	t.Helper()
	req := &wire.Message{Type: wire.TGet, Key: store.ObjectKey(key, version), User: AdminIdentity}
	req.Sign(h.ctl.adminKeyFor(h.drives[di].Name()))
	return h.drives[di].Handle(req).Status == wire.StatusOK
}

// TestReplicaFailureDuringWrite kills one replica mid-workload: the
// client gets a clean error, no healthy replica is left with an object
// record whose metadata did not commit with it (the crash-consistency
// bug the atomic batch closes), and repair reconverges the revived
// drive.
func TestReplicaFailureDuringWrite(t *testing.T) {
	const key = "k"
	h := newKillableHarness(t, 3, func(c *Config) { c.Replicas = 3 })
	s := h.ctl.Session("w")
	ctx := context.Background()

	if _, err := s.Put(ctx, key, []byte("v0"), PutOptions{}); err != nil {
		t.Fatal(err)
	}

	victim := store.Placement(key, 3, 3)[1]
	h.kill(victim)

	// The write fails cleanly: write-through needs every replica.
	if _, err := s.Put(ctx, key, []byte("v1"), PutOptions{}); err == nil {
		t.Fatal("put succeeded with a dead replica under all-replica write-through")
	}

	// Healthy replicas must be internally consistent: wherever the
	// metadata advanced to version 1, the version-1 object record
	// committed with it atomically — and vice versa.
	for di := range h.drives {
		if di == victim {
			continue
		}
		m, ok := h.driveMeta(t, di, key)
		if !ok {
			t.Fatalf("drive %d lost the metadata record", di)
		}
		if !h.driveHasObject(t, di, key, m.Version) {
			t.Errorf("drive %d: meta at v%d without its object record (orphaned meta)", di, m.Version)
		}
		if h.driveHasObject(t, di, key, m.Version+1) {
			t.Errorf("drive %d: object record v%d beyond meta v%d (orphaned object)", di, m.Version+1, m.Version)
		}
	}

	// Revive the drive and repair: the survivors' newest version is
	// re-established everywhere, including the revived replica.
	h.revive(victim)
	report, err := s.Repair(ctx, key)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if report.Restored == 0 {
		t.Fatal("repair restored nothing on the revived replica")
	}
	newest, ok := h.driveMeta(t, 0, key)
	if !ok {
		t.Fatal("no metadata after repair")
	}
	for di := range h.drives {
		m, ok := h.driveMeta(t, di, key)
		if !ok || m.Version != newest.Version {
			t.Errorf("drive %d: meta %+v, want version %d", di, m, newest.Version)
		}
		for v := int64(0); v <= newest.Version; v++ {
			if !h.driveHasObject(t, di, key, v) {
				t.Errorf("drive %d missing object record v%d after repair", di, v)
			}
		}
	}
	// The object reads back at the converged version.
	val, meta, err := s.Get(ctx, key, GetOptions{})
	if err != nil {
		t.Fatalf("get after repair: %v", err)
	}
	if meta.Version != newest.Version {
		t.Errorf("controller reads v%d, drives converged at v%d", meta.Version, newest.Version)
	}
	want := []byte("v0")
	if newest.Version == 1 {
		want = []byte("v1")
	}
	if !bytes.Equal(val, want) {
		t.Errorf("value %q at v%d", val, meta.Version)
	}
}

// TestReadFailsOverToHealthyReplica: parallel first-wins reads serve a
// key even when a replica drops off, and a degraded replica that lost
// a record cannot shadow a healthy copy with not-found.
func TestReadFailsOverToHealthyReplica(t *testing.T) {
	const key = "k"
	h := newKillableHarness(t, 2, func(c *Config) { c.Replicas = 2 })
	s := h.ctl.Session("w")
	ctx := context.Background()
	if _, err := s.Put(ctx, key, []byte("v"), PutOptions{}); err != nil {
		t.Fatal(err)
	}
	h.kill(store.Placement(key, 2, 2)[0]) // kill the primary
	// Drop the caches so the read must reach the drives.
	h.ctl.metaCache.Remove(key)
	h.ctl.objectCache.Remove(string(store.ObjectKey(key, 0)))
	val, _, err := s.Get(ctx, key, GetOptions{})
	if err != nil || !bytes.Equal(val, []byte("v")) {
		t.Fatalf("get with dead primary: %q %v", val, err)
	}
}
