package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"
)

func TestBatchPutPerOpResults(t *testing.T) {
	h := newHarness(t, 2, func(c *Config) { c.Replicas = 2 })
	owner := h.ctl.Session("aa")
	other := h.ctl.Session("bb")
	ctx := context.Background()

	sealed, err := h.ctl.PutPolicy(ctx, "read :- sessionKeyIs(k'aa')\nupdate :- sessionKeyIs(k'aa')")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := owner.Put(ctx, "locked", []byte("v"), PutOptions{PolicyID: sealed}); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"existing", "conflict"} {
		if _, err := owner.Put(ctx, k, []byte("v"), PutOptions{}); err != nil {
			t.Fatal(err)
		}
	}

	results, err := other.BatchPut(ctx, []BatchPutOp{
		{Key: "b/new", Value: []byte("n")},                                   // ok: creation
		{Key: "conflict", Value: []byte("n2"), Version: 9, HasVersion: true}, // version conflict
		{Key: "locked", Value: []byte("n3")},                                 // policy denied
		{Key: "b/new", Value: []byte("dup")},                                 // duplicate in batch
		{Key: "", Value: []byte("x")},                                        // invalid key
		{Key: "existing", Value: []byte("n4"), Version: 1, HasVersion: true}, // ok: correct next version
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantCodes := []ErrorCode{CodeNone, CodeVersionConflict, CodeDenied, CodeInvalidArgument, CodeInvalidArgument, CodeNone}
	for i, want := range wantCodes {
		got := CodeNone
		if results[i].Err != nil {
			got = results[i].Err.Code
		}
		if got != want {
			t.Errorf("op %d: code %q, want %q (%+v)", i, got, want, results[i])
		}
	}
	if results[0].Version != 0 || results[5].Version != 1 {
		t.Errorf("surviving versions: %d, %d", results[0].Version, results[5].Version)
	}
	// Survivors are durable and readable.
	val, _, err := other.Get(ctx, "b/new", GetOptions{})
	if err != nil || !bytes.Equal(val, []byte("n")) {
		t.Errorf("b/new after batch: %q %v", val, err)
	}
	val, meta, err := other.Get(ctx, "existing", GetOptions{})
	if err != nil || !bytes.Equal(val, []byte("n4")) || meta.Version != 1 {
		t.Errorf("existing after batch: %q v%v %v", val, meta, err)
	}
	// Failed ops left no trace.
	if val, _, _ := owner.Get(ctx, "locked", GetOptions{}); !bytes.Equal(val, []byte("v")) {
		t.Errorf("locked changed to %q", val)
	}
}

func TestBatchPutRidesAtomicBatches(t *testing.T) {
	h := newHarness(t, 2, func(c *Config) { c.Replicas = 2 })
	s := h.ctl.Session("w")
	ctx := context.Background()

	before := make([]uint64, len(h.drives))
	for i, d := range h.drives {
		before[i] = d.Stats().Batches.Load()
	}
	ops := make([]BatchPutOp, 10)
	for i := range ops {
		ops[i] = BatchPutOp{Key: JSONKey(fmt.Sprintf("bp/%02d", i)), Value: []byte("v")}
	}
	results, err := s.BatchPut(ctx, ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("op %d failed: %v", i, r.Err)
		}
	}
	// 10 writes × 2 replicas ride one batch message per drive, not one
	// round trip per write.
	for i, d := range h.drives {
		if got := d.Stats().Batches.Load() - before[i]; got != 1 {
			t.Errorf("drive %d received %d batch messages, want 1", i, got)
		}
	}
}

func TestBatchGetMixedResults(t *testing.T) {
	h := newHarness(t, 2, func(c *Config) { c.Replicas = 2 })
	owner := h.ctl.Session("aa")
	other := h.ctl.Session("bb")
	ctx := context.Background()

	sealed, err := h.ctl.PutPolicy(ctx, "read :- sessionKeyIs(k'aa')\nupdate :- sessionKeyIs(k'aa')")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := owner.Put(ctx, "pub", []byte("p"), PutOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := owner.Put(ctx, "sec", []byte("s"), PutOptions{PolicyID: sealed}); err != nil {
		t.Fatal(err)
	}

	results, err := other.BatchGet(ctx, []string{"pub", "sec", "missing"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || !bytes.Equal(results[0].Value, []byte("p")) {
		t.Errorf("pub: %+v", results[0])
	}
	if results[1].Err == nil || results[1].Err.Code != CodeDenied || len(results[1].Value) != 0 {
		t.Errorf("sec: %+v", results[1])
	}
	if results[2].Err == nil || results[2].Err.Code != CodeNotFound {
		t.Errorf("missing: %+v", results[2])
	}
}
