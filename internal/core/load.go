// Per-range load accounting: every data operation is charged to a
// fixed-width bucket of the keyspace-hash space, giving operators and
// the cluster autobalancer a histogram of where the shard's load
// lands. Buckets are coarse (1/64 of the hash space) so the whole
// histogram is a few hundred bytes of atomics on the hot path — two
// atomic adds per operation, no locks.
package core

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// LoadBuckets is the number of fixed-width load-accounting buckets
// over the hash space [0, store.ShardSpace).
const LoadBuckets = 64

// loadBucketShift converts a shard hash to its bucket index:
// ShardSpace (65536) / LoadBuckets (64) = 1024 = 2^10.
const loadBucketShift = 10

// bucketLoad is one bucket's cumulative counters.
type bucketLoad struct {
	reads, writes           atomic.Uint64
	readBytes, writeBytes   atomic.Uint64
}

// loadState is the controller's load histogram plus the lazily
// maintained rate window /v1/status reports ops/s figures from.
type loadState struct {
	buckets [LoadBuckets]bucketLoad

	mu       sync.Mutex
	lastAt   time.Time
	lastOps  uint64
	lastRead uint64 // bytes
	lastWrit uint64 // bytes
	opsRate  float64
	readBps  float64
	writeBps float64
}

// noteRead charges one read of n payload bytes against key's bucket.
func (c *Controller) noteRead(key string, n int) {
	b := &c.load.buckets[store.ShardHash(key)>>loadBucketShift]
	b.reads.Add(1)
	b.readBytes.Add(uint64(n))
}

// noteWrite charges one write of n payload bytes against key's bucket.
func (c *Controller) noteWrite(key string, n int) {
	b := &c.load.buckets[store.ShardHash(key)>>loadBucketShift]
	b.writes.Add(1)
	b.writeBytes.Add(uint64(n))
}

// BucketLoad is one load bucket's cumulative counters.
type BucketLoad struct {
	Reads      uint64 `json:"reads"`
	Writes     uint64 `json:"writes"`
	ReadBytes  uint64 `json:"read_bytes"`
	WriteBytes uint64 `json:"write_bytes"`
}

// Ops returns the bucket's total operation count.
func (b BucketLoad) Ops() uint64 { return b.Reads + b.Writes }

// RangeLoad aggregates the buckets of one owned hash range.
type RangeLoad struct {
	Range HashRange `json:"range"`
	BucketLoad
}

// LoadStatus is the load section of /v1/status: the raw bucket
// histogram (the autobalancer's input), the same counters aggregated
// per owned range (the operator view), and smoothed rates over the
// recent polling window.
type LoadStatus struct {
	// BucketWidth is the hash-space width of one histogram bucket.
	BucketWidth uint32 `json:"bucket_width"`
	// Buckets is the cumulative histogram, index i covering
	// [i*BucketWidth, (i+1)*BucketWidth).
	Buckets []BucketLoad `json:"buckets"`
	// Ranges aggregates Buckets over the shard's owned ranges (the
	// whole space when unsharded).
	Ranges []RangeLoad `json:"ranges"`
	// OpsPerSec / ReadBytesPerSec / WriteBytesPerSec are rates over
	// the window since the previous status poll (≥ 1s apart).
	OpsPerSec        float64 `json:"ops_per_sec"`
	ReadBytesPerSec  float64 `json:"read_bytes_per_sec"`
	WriteBytesPerSec float64 `json:"write_bytes_per_sec"`
}

// loadBuckets snapshots the histogram.
func (c *Controller) loadBuckets() []BucketLoad {
	out := make([]BucketLoad, LoadBuckets)
	for i := range c.load.buckets {
		b := &c.load.buckets[i]
		out[i] = BucketLoad{
			Reads:      b.reads.Load(),
			Writes:     b.writes.Load(),
			ReadBytes:  b.readBytes.Load(),
			WriteBytes: b.writeBytes.Load(),
		}
	}
	return out
}

// LoadStatus reports the controller's load histogram. Rates refresh at
// most once per second: concurrent pollers share one window instead of
// tearing each other's baselines.
func (c *Controller) LoadStatus() *LoadStatus {
	buckets := c.loadBuckets()
	ranges := c.ownedRangesForLoad()
	st := &LoadStatus{
		BucketWidth: store.ShardSpace / LoadBuckets,
		Buckets:     buckets,
		Ranges:      aggregateLoad(buckets, ranges),
	}

	var ops, rb, wb uint64
	for _, b := range buckets {
		ops += b.Ops()
		rb += b.ReadBytes
		wb += b.WriteBytes
	}
	l := &c.load
	l.mu.Lock()
	now := c.clock()
	if l.lastAt.IsZero() {
		l.lastAt, l.lastOps, l.lastRead, l.lastWrit = now, ops, rb, wb
	} else if dt := now.Sub(l.lastAt).Seconds(); dt >= 1 {
		l.opsRate = float64(ops-l.lastOps) / dt
		l.readBps = float64(rb-l.lastRead) / dt
		l.writeBps = float64(wb-l.lastWrit) / dt
		l.lastAt, l.lastOps, l.lastRead, l.lastWrit = now, ops, rb, wb
	}
	st.OpsPerSec, st.ReadBytesPerSec, st.WriteBytesPerSec = l.opsRate, l.readBps, l.writeBps
	l.mu.Unlock()
	return st
}

// ownedRangesForLoad returns the ranges to aggregate over: the owned
// shard ranges, or the whole space when unsharded.
func (c *Controller) ownedRangesForLoad() []HashRange {
	if _, ranges, sharded := c.shardSnapshot(); sharded {
		return ranges
	}
	return []HashRange{{Start: 0, End: store.ShardSpace}}
}

// aggregateLoad sums the histogram buckets intersecting each range.
// Buckets straddling a range boundary are charged to every range they
// touch — the histogram is coarser than range boundaries, and for
// balancing purposes over-attribution beats dropping load on the
// floor.
func aggregateLoad(buckets []BucketLoad, ranges []HashRange) []RangeLoad {
	width := uint32(store.ShardSpace / LoadBuckets)
	out := make([]RangeLoad, len(ranges))
	for i, r := range ranges {
		out[i].Range = r
		for bi, b := range buckets {
			bStart := uint32(bi) * width
			if bStart < r.End && r.Start < bStart+width {
				out[i].Reads += b.Reads
				out[i].Writes += b.Writes
				out[i].ReadBytes += b.ReadBytes
				out[i].WriteBytes += b.WriteBytes
			}
		}
	}
	return out
}
