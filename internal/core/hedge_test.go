package core

import (
	"bytes"
	"context"
	"crypto/rand"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"errors"

	"repro/internal/enclave/attest"
	"repro/internal/kinetic"
	"repro/internal/netx"
	"repro/internal/store"
)

// newMediaHarness builds a controller over in-memory drives with a
// per-drive media model, for hedged-read experiments that need one
// replica slower than the others.
func newMediaHarness(t *testing.T, nDrives int, media func(i int) kinetic.MediaModel, mutate func(*Config)) *harness {
	t.Helper()
	h := &harness{}
	secrets := &attest.Secrets{}
	if _, err := rand.Read(secrets.ObjectKey[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := rand.Read(secrets.AdminSeed[:]); err != nil {
		t.Fatal(err)
	}
	// Group commit on, like newHarness and every shipped
	// configuration; tests opt out via mutate.
	cfg := Config{Replicas: 1, Encrypt: true, GroupCommit: true, TakeOver: true, Secrets: secrets}
	for i := 0; i < nDrives; i++ {
		name := fmt.Sprintf("d%d", i)
		var m kinetic.MediaModel
		if media != nil {
			m = media(i)
		}
		drive := kinetic.NewDrive(kinetic.Config{Name: name, Media: m})
		ln := netx.NewListener(name)
		h.drives = append(h.drives, drive)
		h.lns = append(h.lns, ln)
		h.servers = append(h.servers, kinetic.Serve(drive, ln, nil))
		cfg.Drives = append(cfg.Drives, DriveEndpoint{
			Name:  name,
			Dial:  func(ctx context.Context) (net.Conn, error) { return ln.DialContext(ctx) },
			Conns: 2,
		})
		secrets.Drives = append(secrets.Drives, attest.DriveCredential{
			Address: name, Identity: kinetic.DefaultAdminIdentity, Key: kinetic.DefaultAdminKey,
		})
	}
	if mutate != nil {
		mutate(&cfg)
	}
	ctl, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatalf("controller: %v", err)
	}
	h.ctl = ctl
	t.Cleanup(func() {
		ctl.Close()
		for _, s := range h.servers {
			s.Close()
		}
	})
	return h
}

// driveGets sums the Gets counter across all drives.
func driveGets(drives []*kinetic.Drive) uint64 {
	var n uint64
	for _, d := range drives {
		n += d.Stats().Gets.Load()
	}
	return n
}

// TestHedgedReadsReduceMediaOccupancy is the acceptance pin for the
// hedged read engine: on a read-heavy, cache-hostile workload with 3
// replicas, the all-replica fan-out occupies every replica's media
// per read while the hedged engine occupies ~one, without losing a
// single read.
func TestHedgedReadsReduceMediaOccupancy(t *testing.T) {
	const (
		nKeys = 20
		reads = 100
	)
	occupancy := func(fanout bool) float64 {
		h := newMediaHarness(t, 3, nil, func(c *Config) {
			c.Replicas = 3
			c.FanoutReads = fanout
			// Far above the in-memory RTT: hedges never fire, so the
			// measurement isolates engine occupancy, not hedge noise.
			c.HedgeDelay = 50 * time.Millisecond
		})
		s := h.ctl.Session("w")
		ctx := context.Background()
		for i := 0; i < nKeys; i++ {
			if _, err := s.Put(ctx, fmt.Sprintf("k%d", i), []byte("v"), PutOptions{}); err != nil {
				t.Fatal(err)
			}
		}
		before := driveGets(h.drives)
		for i := 0; i < reads; i++ {
			h.ctl.DropCaches() // cache-hostile: every read misses
			val, _, err := s.Get(ctx, fmt.Sprintf("k%d", i%nKeys), GetOptions{})
			if err != nil || !bytes.Equal(val, []byte("v")) {
				t.Fatalf("read %d (fanout=%v): %q %v", i, fanout, val, err)
			}
		}
		// Drive GETs per client read (each read = meta + record).
		return float64(driveGets(h.drives)-before) / reads
	}

	fanout := occupancy(true)
	hedged := occupancy(false)
	t.Logf("media occupancy (drive GETs per read): fanout=%.2f hedged=%.2f", fanout, hedged)
	// Fan-out touches all 3 replicas for both the meta and the record
	// read (~6); hedged touches ~one replica for each (~2).
	if fanout < 4 {
		t.Errorf("fan-out occupancy %.2f implausibly low; measurement broken", fanout)
	}
	if hedged >= fanout/2 {
		t.Errorf("hedged occupancy %.2f did not halve fan-out occupancy %.2f", hedged, fanout)
	}
}

// TestHedgeFiresOnSlowReplica: when the primary's media is degraded,
// the hedge fires after the configured delay and the read completes at
// the healthy replica's speed instead of the slow one's — the
// no-tail-regression half of the acceptance criterion.
func TestHedgeFiresOnSlowReplica(t *testing.T) {
	const key = "k"
	slow := store.Placement(key, 2, 2)[0] // the untrained engine tries this first
	const slowDelay = 40 * time.Millisecond
	h := newMediaHarness(t, 2, func(i int) kinetic.MediaModel {
		if i == slow {
			return &kinetic.HDDMedia{Positioning: slowDelay, BytesPerSec: 150e6, TimeScale: 1}
		}
		return nil
	}, func(c *Config) {
		c.Replicas = 2
		c.HedgeDelay = 2 * time.Millisecond
	})
	s := h.ctl.Session("w")
	ctx := context.Background()
	if _, err := s.Put(ctx, key, []byte("v"), PutOptions{}); err != nil {
		t.Fatal(err)
	}

	h.ctl.DropCaches()
	t0 := time.Now()
	val, _, err := s.Get(ctx, key, GetOptions{})
	elapsed := time.Since(t0)
	if err != nil || !bytes.Equal(val, []byte("v")) {
		t.Fatalf("get: %q %v", val, err)
	}
	if hedges := h.ctl.stats.Snapshot().ReadHedges; hedges == 0 {
		t.Error("slow primary did not trigger a hedge")
	}
	if elapsed >= slowDelay {
		t.Errorf("read took %v, gated on the slow replica (%v); hedge did not cover the tail", elapsed, slowDelay)
	}

	// The engine learns: the outlived slow primary was charged its
	// elapsed time, so subsequent reads order the healthy replica
	// first and stop paying the hedge delay.
	h.ctl.DropCaches()
	if _, _, err := s.Get(ctx, key, GetOptions{}); err != nil {
		t.Fatal(err)
	}
	lats := h.ctl.DriveLatencies()
	if lats[slow].Samples == 0 {
		t.Error("slow replica accumulated no latency samples despite losing hedge races")
	}
	placement := store.Placement(key, 2, 2)
	pools := make([]*drivePool, len(placement))
	for i, di := range placement {
		pools[i] = h.ctl.drives[di]
	}
	if order := orderByLatency(pools); order[0] == h.ctl.drives[slow] {
		t.Errorf("slow replica still ordered first after losing races (latencies %+v)", lats)
	}
}

// TestHedgedDegradedReplicaDoesNotShadow: a replica that lost both the
// record and the metadata answers not-found first (it is fastest);
// the hedged engine must still consult the healthy replica rather
// than affirming absence.
func TestHedgedDegradedReplicaDoesNotShadow(t *testing.T) {
	const key = "k"
	h := newKillableHarness(t, 2, func(c *Config) {
		c.Replicas = 2
		c.HedgeDelay = 5 * time.Millisecond
	})
	s := h.ctl.Session("w")
	ctx := context.Background()
	if _, err := s.Put(ctx, key, []byte("v"), PutOptions{}); err != nil {
		t.Fatal(err)
	}
	// Degrade the primary: delete its metadata and object record.
	victim := store.Placement(key, 2, 2)[0]
	h.deleteRaw(t, victim, store.MetaKey(key))
	h.deleteRaw(t, victim, store.ObjectKey(key, 0))

	h.ctl.DropCaches()
	val, _, err := s.Get(ctx, key, GetOptions{})
	if err != nil || !bytes.Equal(val, []byte("v")) {
		t.Fatalf("degraded replica shadowed the healthy copy: %q %v", val, err)
	}
}

// TestHedgedMixedNotFoundErrorSurfacesError: one replica lost the
// record (not-found), the other is unreachable (error). Absence is
// not unanimous, so the read must surface the error, never not-found.
func TestHedgedMixedNotFoundErrorSurfacesError(t *testing.T) {
	const key = "k"
	h := newKillableHarness(t, 2, func(c *Config) {
		c.Replicas = 2
		c.HedgeDelay = time.Millisecond
	})
	s := h.ctl.Session("w")
	ctx := context.Background()
	if _, err := s.Put(ctx, key, []byte("v"), PutOptions{}); err != nil {
		t.Fatal(err)
	}
	degraded := store.Placement(key, 2, 2)[0]
	dead := store.Placement(key, 2, 2)[1]
	h.deleteRaw(t, degraded, store.MetaKey(key))
	h.deleteRaw(t, degraded, store.ObjectKey(key, 0))
	h.kill(dead)

	h.ctl.DropCaches()
	_, _, err := s.Get(ctx, key, GetOptions{})
	if err == nil {
		t.Fatal("read succeeded with one degraded and one dead replica")
	}
	if errors.Is(err, ErrNotFound) {
		t.Fatalf("mixed not-found/error affirmed absence: %v", err)
	}
}

// TestHedgedReadsFullWorkload runs a mixed read/write/delete workload
// under the hedged engine with replica failover mid-run — the
// "existing semantics hold under hedging" sweep.
func TestHedgedReadsFullWorkload(t *testing.T) {
	h := newKillableHarness(t, 3, func(c *Config) { c.Replicas = 3 })
	s := h.ctl.Session("w")
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		if _, err := s.Put(ctx, k, []byte("v0"), PutOptions{}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Put(ctx, k, []byte("v1"), PutOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	// Kill a non-primary replica: reads keep working off the rest.
	h.kill(1)
	h.ctl.DropCaches()
	for i := 0; i < 10; i++ {
		val, meta, err := s.Get(ctx, fmt.Sprintf("k%d", i), GetOptions{})
		if err != nil || !bytes.Equal(val, []byte("v1")) || meta.Version != 1 {
			t.Fatalf("get k%d with dead replica: %q v%v %v", i, val, meta, err)
		}
	}
	// Historic versions and version listings also fail over.
	h.ctl.DropCaches()
	if vs, err := s.ListVersions(ctx, "k0", nil); err != nil || len(vs) != 2 {
		t.Fatalf("list versions with dead replica: %v %v", vs, err)
	}
	val, _, err := s.Get(ctx, "k0", GetOptions{Version: 0, HasVersion: true})
	if err != nil || !bytes.Equal(val, []byte("v0")) {
		t.Fatalf("historic get with dead replica: %q %v", val, err)
	}
	// Revive and repair: convergence is unchanged under hedging.
	h.revive(1)
	if _, err := s.Repair(ctx, "k0"); err != nil {
		t.Fatalf("repair under hedged reads: %v", err)
	}
}

// TestDeadReplicaLosesPrimarySlot: a drive that only ever fails never
// completes a round trip, so latency samples alone could never demote
// it; the failure counter must push it out of the primary slot so
// healthy replicas stop paying the hedge delay on every read.
func TestDeadReplicaLosesPrimarySlot(t *testing.T) {
	const key = "k"
	h := newKillableHarness(t, 2, func(c *Config) {
		c.Replicas = 2
		c.HedgeDelay = time.Millisecond
	})
	s := h.ctl.Session("w")
	ctx := context.Background()
	if _, err := s.Put(ctx, key, []byte("v"), PutOptions{}); err != nil {
		t.Fatal(err)
	}
	dead := store.Placement(key, 2, 2)[0]
	h.kill(dead)
	// Pin the dead drive into the primary slot: feed it artificially
	// fast samples so EWMA ordering alone would keep trying it first.
	for i := 0; i < 8; i++ {
		h.ctl.drives[dead].observe(time.Nanosecond)
	}

	// Cold reads against the dead primary: each must still succeed off
	// the healthy replica, and the transport failures must mark the
	// drive as failing.
	for i := 0; i < 3; i++ {
		h.ctl.DropCaches()
		val, _, err := s.Get(ctx, key, GetOptions{})
		if err != nil || !bytes.Equal(val, []byte("v")) {
			t.Fatalf("read %d with dead primary: %q %v", i, val, err)
		}
	}
	if !h.ctl.drives[dead].failing() {
		t.Fatal("dead drive not marked failing after transport errors")
	}
	placement := store.Placement(key, 2, 2)
	pools := make([]*drivePool, len(placement))
	for i, di := range placement {
		pools[i] = h.ctl.drives[di]
	}
	if order := orderByLatency(pools); order[0] == h.ctl.drives[dead] {
		t.Error("dead drive kept the primary slot; every read pays the hedge delay")
	}
	// Demotion is preference, not exclusion: revive the drive, fail the
	// other replica, and the demoted drive still serves the read — its
	// first success clears the failing mark.
	h.revive(dead)
	h.kill(placement[1])
	h.ctl.DropCaches()
	val, _, err := s.Get(ctx, key, GetOptions{})
	if err != nil || !bytes.Equal(val, []byte("v")) {
		t.Fatalf("read off the revived replica: %q %v", val, err)
	}
	if h.ctl.drives[dead].failing() {
		t.Error("revived drive still marked failing after a successful read")
	}
}

// TestCoalescedMissesOneDriveRead: N concurrent cache misses on one
// hot key cost one drive round trip per record kind, not N.
func TestCoalescedMissesOneDriveRead(t *testing.T) {
	h := newHarness(t, 1, nil)
	s := h.ctl.Session("w")
	ctx := context.Background()
	if _, err := s.Put(ctx, "hot", bytes.Repeat([]byte("x"), 512), PutOptions{}); err != nil {
		t.Fatal(err)
	}
	h.ctl.DropCaches()
	before := driveGets(h.drives)

	const n = 32
	var wg sync.WaitGroup
	var fails atomic.Int32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := s.Get(ctx, "hot", GetOptions{}); err != nil {
				fails.Add(1)
			}
		}()
	}
	wg.Wait()
	if fails.Load() != 0 {
		t.Fatalf("%d concurrent reads failed", fails.Load())
	}
	delta := driveGets(h.drives) - before
	// One meta read + one record read, plus a little slack for a
	// latecomer that starts a fresh flight after the first resolved.
	if delta > 6 {
		t.Errorf("%d concurrent misses cost %d drive reads, want coalescing to ~2", n, delta)
	}
	if h.ctl.stats.Snapshot().CoalescedReads == 0 {
		t.Error("no reads were coalesced")
	}
}

// TestDecisionCacheFastPath: a session-static policy evaluates once
// per (policy, client, op); repeat checks hit the decision cache for
// both grants and denials, and non-static policies never populate it.
func TestDecisionCacheFastPath(t *testing.T) {
	h := newHarness(t, 1, nil)
	ctx := context.Background()
	alice, mallory := h.ctl.Session("aa"), h.ctl.Session("bb")

	pid, err := h.ctl.PutPolicy(ctx, "read :- sessionKeyIs(k'aa')\nupdate :- sessionKeyIs(k'aa')")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Put(ctx, "o", []byte("v"), PutOptions{PolicyID: pid}); err != nil {
		t.Fatal(err)
	}

	const reads = 10
	for i := 0; i < reads; i++ {
		if _, _, err := alice.Get(ctx, "o", GetOptions{}); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	st := h.ctl.stats.Snapshot()
	if st.DecisionHits < reads-1 {
		t.Errorf("decision hits %d, want >= %d (interpreter should run once)", st.DecisionHits, reads-1)
	}

	// Denials are memoized too, with the reason preserved.
	for i := 0; i < 3; i++ {
		_, _, err := mallory.Get(ctx, "o", GetOptions{})
		var denied *DeniedError
		if !errors.As(err, &denied) || denied.Reason == "" {
			t.Fatalf("denial %d: %v", i, err)
		}
	}

	// A version-dependent policy is not static: the decision cache
	// must not serve it.
	vpid, err := h.ctl.PutPolicy(ctx, "read :- sessionKeyIs(U)\nupdate :- currVersion(this, V) and nextVersion(V + 1)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Put(ctx, "ver", []byte("v"), PutOptions{PolicyID: vpid}); err != nil {
		t.Fatal(err)
	}
	hits0 := h.ctl.stats.Snapshot().DecisionHits
	for want := int64(1); want <= 3; want++ {
		if _, err := alice.Put(ctx, "ver", []byte("v"), PutOptions{Version: want, HasVersion: true}); err != nil {
			t.Fatalf("versioned put %d: %v", want, err)
		}
	}
	if hits1 := h.ctl.stats.Snapshot().DecisionHits; hits1 != hits0 {
		t.Errorf("version-dependent policy took %d decision-cache hits", hits1-hits0)
	}
}

// TestDrivePoolConcurrentChurn hammers one drive pool from many
// goroutines while its network endpoint is killed and revived: no
// deadlocks, no lost pool state, and full recovery afterwards.
func TestDrivePoolConcurrentChurn(t *testing.T) {
	h := newKillableHarness(t, 1, nil)
	s := h.ctl.Session("w")
	ctx := context.Background()
	if _, err := s.Put(ctx, "k", []byte("v"), PutOptions{}); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.ctl.DropCaches()
				cctx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
				s.Get(cctx, "k", GetOptions{}) // errors expected mid-churn
				cancel()
			}
		}()
	}
	for i := 0; i < 15; i++ {
		h.kill(0)
		time.Sleep(time.Millisecond)
		h.revive(0)
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// The pool must serve reads again once the drive is stable.
	h.ctl.DropCaches()
	deadline := time.Now().Add(5 * time.Second)
	for {
		val, _, err := s.Get(ctx, "k", GetOptions{})
		if err == nil && bytes.Equal(val, []byte("v")) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool did not recover after churn: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The latency estimator stayed coherent under the churn.
	for _, dl := range h.ctl.DriveLatencies() {
		if dl.Samples > 0 && (dl.EWMA <= 0 || dl.P95 < dl.EWMA) {
			t.Errorf("estimator incoherent after churn: %+v", dl)
		}
	}
}

// TestLatencyEstimator pins the estimator's convergence and drift
// tracking on a deterministic sample stream.
func TestLatencyEstimator(t *testing.T) {
	var e latencyEstimator
	for i := 0; i < 200; i++ {
		e.observe(time.Millisecond)
	}
	ewma, p95, n := e.snapshot()
	if n != 200 {
		t.Fatalf("samples %d", n)
	}
	if ewma < 900*time.Microsecond || ewma > 1100*time.Microsecond {
		t.Errorf("ewma %v, want ~1ms", ewma)
	}
	if p95 < ewma || p95 > 2*time.Millisecond {
		t.Errorf("p95 %v out of range for constant 1ms stream", p95)
	}
	// Drift: the estimate follows a 10x degradation.
	for i := 0; i < 200; i++ {
		e.observe(10 * time.Millisecond)
	}
	ewma, _, _ = e.snapshot()
	if ewma < 8*time.Millisecond {
		t.Errorf("ewma %v did not track the degradation to 10ms", ewma)
	}
}
