package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// collectPages drains a listing with the given page size, asserting
// per-page invariants, and returns every entry in order.
func collectPages(t *testing.T, s *Session, opts ScanOptions) []ScanEntry {
	t.Helper()
	ctx := context.Background()
	var all []ScanEntry
	for pages := 0; ; pages++ {
		if pages > 1000 {
			t.Fatal("scan does not terminate")
		}
		page, err := s.Scan(ctx, opts)
		if err != nil {
			t.Fatalf("scan page %d: %v", pages, err)
		}
		if opts.Limit > 0 && len(page.Entries) > opts.Limit {
			t.Fatalf("page %d has %d entries, limit %d", pages, len(page.Entries), opts.Limit)
		}
		all = append(all, page.Entries...)
		if page.NextToken == "" {
			return all
		}
		opts.Token = page.NextToken
	}
}

func TestScanMergedReplicasExactlyOnceNewestVersion(t *testing.T) {
	h := newHarness(t, 3, func(c *Config) { c.Replicas = 2 })
	s := h.ctl.Session("alice")
	ctx := context.Background()

	const n = 25
	want := make(map[string]int64)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("obj/%03d", i)
		if _, err := s.Put(ctx, key, []byte("v0"), PutOptions{}); err != nil {
			t.Fatal(err)
		}
		want[key] = 0
		// Give every third key extra versions: the scan must report the
		// newest, exactly once, despite two replicas listing it.
		for v := int64(1); v <= int64(i%3); v++ {
			if _, err := s.Put(ctx, key, []byte("v"), PutOptions{}); err != nil {
				t.Fatal(err)
			}
			want[key] = v
		}
	}
	// Drop the meta cache so the scan's metadata loads hit the drives.
	h.ctl.metaCache.Clear()

	entries := collectPages(t, s, ScanOptions{Prefix: "obj/", Limit: 7})
	if len(entries) != n {
		t.Fatalf("scan returned %d entries, want %d", len(entries), n)
	}
	seen := make(map[string]bool)
	prev := ""
	for _, e := range entries {
		k := string(e.Key)
		if seen[k] {
			t.Errorf("key %q returned more than once", k)
		}
		seen[k] = true
		if k <= prev {
			t.Errorf("entries out of order: %q after %q", k, prev)
		}
		prev = k
		if want[k] != e.Version {
			t.Errorf("key %q at version %d, want newest %d", k, e.Version, want[k])
		}
	}
}

func TestScanPolicyFilterNeverLeaksAcrossPages(t *testing.T) {
	h := newHarness(t, 2, func(c *Config) { c.Replicas = 2 })
	owner := h.ctl.Session("aa")
	other := h.ctl.Session("bb")
	ctx := context.Background()

	sealed, err := h.ctl.PutPolicy(ctx, "read :- sessionKeyIs(k'aa')\nupdate :- sessionKeyIs(k'aa')")
	if err != nil {
		t.Fatal(err)
	}
	denied := make(map[string]bool)
	const n = 30
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("doc/%03d", i)
		opts := PutOptions{}
		if i%3 == 0 { // every third key is unreadable for bob
			opts.PolicyID = sealed
			denied[key] = true
		}
		if _, err := owner.Put(ctx, key, []byte("x"), opts); err != nil {
			t.Fatal(err)
		}
	}

	// A tiny page size forces page boundaries to land on and around
	// denied keys; none may leak on any page.
	entries := collectPages(t, other, ScanOptions{Prefix: "doc/", Limit: 2})
	if wantVisible := n - len(denied); len(entries) != wantVisible {
		t.Fatalf("bob sees %d entries, want %d", len(entries), wantVisible)
	}
	for _, e := range entries {
		if denied[string(e.Key)] {
			t.Errorf("policy-denied key %q leaked to bob", e.Key)
		}
	}
	// The owner still sees everything.
	if entries := collectPages(t, owner, ScanOptions{Prefix: "doc/", Limit: 4}); len(entries) != n {
		t.Fatalf("alice sees %d entries, want %d", len(entries), n)
	}
	st := h.ctl.stats.Snapshot()
	if st.ScanFiltered == 0 {
		t.Error("ScanFiltered counter not incremented")
	}
}

func TestScanTokensValidUnderConcurrentWrites(t *testing.T) {
	h := newHarness(t, 2, func(c *Config) { c.Replicas = 2 })
	s := h.ctl.Session("w")
	ctx := context.Background()

	for i := 0; i < 10; i++ {
		if _, err := s.Put(ctx, fmt.Sprintf("k/%02d", i), []byte("v"), PutOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	page1, err := s.Scan(ctx, ScanOptions{Prefix: "k/", Limit: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(page1.Entries) != 4 || page1.NextToken == "" {
		t.Fatalf("page1: %d entries, token %q", len(page1.Entries), page1.NextToken)
	}

	// Concurrent mutations between pages: an insert past the cursor, an
	// insert before it, a delete past it, and an update past it.
	if _, err := s.Put(ctx, "k/055", []byte("new"), PutOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(ctx, "k/00a", []byte("new"), PutOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(ctx, "k/07", DeleteOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(ctx, "k/08", []byte("v1"), PutOptions{}); err != nil {
		t.Fatal(err)
	}

	rest := collectPages(t, s, ScanOptions{Prefix: "k/", Limit: 4, Token: page1.NextToken})
	got := make(map[string]int64)
	for _, e := range append(page1.Entries, rest...) {
		if _, dup := got[string(e.Key)]; dup {
			t.Errorf("key %q served twice across pages", e.Key)
		}
		got[string(e.Key)] = e.Version
	}
	// Keys after the resume position reflect the concurrent writes.
	if _, ok := got["k/055"]; !ok {
		t.Error("insert past the cursor not visible to the resumed listing")
	}
	if _, ok := got["k/07"]; ok {
		t.Error("deleted key still served by the resumed listing")
	}
	if got["k/08"] != 1 {
		t.Errorf("updated key served at version %d, want 1", got["k/08"])
	}
	// All surviving original keys are present.
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k/%02d", i)
		if i == 7 {
			continue
		}
		if _, ok := got[key]; !ok {
			t.Errorf("original key %q missing from paginated listing", key)
		}
	}
}

func TestScanPrefixStartAndLimits(t *testing.T) {
	h := newHarness(t, 1, nil)
	s := h.ctl.Session("w")
	ctx := context.Background()
	for _, k := range []string{"a/1", "a/2", "ab", "b/1", "a"} {
		if _, err := s.Put(ctx, k, []byte("v"), PutOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	entries := collectPages(t, s, ScanOptions{Prefix: "a/"})
	if len(entries) != 2 || entries[0].Key != "a/1" || entries[1].Key != "a/2" {
		t.Fatalf("prefix a/ returned %+v", entries)
	}
	// Prefix "a" also matches "a", "ab" — but never "b/1".
	if entries := collectPages(t, s, ScanOptions{Prefix: "a"}); len(entries) != 4 {
		t.Fatalf("prefix a returned %+v", entries)
	}
	// Start inside the prefix skips earlier keys ("a" and "a/1" sort
	// before "a/2"; "ab" after).
	entries = collectPages(t, s, ScanOptions{Prefix: "a", Start: "a/2"})
	if len(entries) != 2 || entries[0].Key != "a/2" || entries[1].Key != "ab" {
		t.Fatalf("start a/2 returned %+v", entries)
	}
	// Empty prefix lists everything.
	if entries := collectPages(t, s, ScanOptions{}); len(entries) != 5 {
		t.Fatalf("full listing returned %+v", entries)
	}
}

func TestScanRejectsBadTokens(t *testing.T) {
	h := newHarness(t, 1, nil)
	s := h.ctl.Session("w")
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		if _, err := s.Put(ctx, fmt.Sprintf("t/%d", i), []byte("v"), PutOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Scan(ctx, ScanOptions{Token: "garbage!!"}); !errors.Is(err, ErrBadToken) {
		t.Errorf("garbage token: %v", err)
	}
	page, err := s.Scan(ctx, ScanOptions{Prefix: "t/", Limit: 2})
	if err != nil || page.NextToken == "" {
		t.Fatalf("page: %v token %q", err, page.NextToken)
	}
	// A token is bound to its listing's prefix.
	if _, err := s.Scan(ctx, ScanOptions{Prefix: "other/", Token: page.NextToken}); !errors.Is(err, ErrBadToken) {
		t.Errorf("cross-prefix token: %v", err)
	}
	// Tampering breaks authentication.
	tampered := []byte(page.NextToken)
	tampered[len(tampered)/2] ^= 0x41
	if _, err := s.Scan(ctx, ScanOptions{Prefix: "t/", Token: string(tampered)}); !errors.Is(err, ErrBadToken) {
		t.Errorf("tampered token: %v", err)
	}
}

func TestScanSurvivesReplicaFailure(t *testing.T) {
	h := newHarness(t, 3, func(c *Config) { c.Replicas = 2 })
	s := h.ctl.Session("w")
	ctx := context.Background()
	const n = 12
	for i := 0; i < n; i++ {
		if _, err := s.Put(ctx, fmt.Sprintf("f/%02d", i), []byte("v"), PutOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	h.ctl.metaCache.Clear()
	// One dead drive out of three with two replicas per key: every key
	// still has a live replica, so the listing must stay complete.
	h.servers[1].Close()
	h.lns[1].Close()
	entries := collectPages(t, s, ScanOptions{Prefix: "f/", Limit: 5})
	if len(entries) != n {
		t.Fatalf("scan with one dead drive returned %d entries, want %d", len(entries), n)
	}
}
