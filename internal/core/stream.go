// Streaming read/write paths of the v2 API. The v1 surface buffers
// whole values in the handler and inherits the Kinetic 1 MB value
// limit; here uploads are consumed chunk by chunk and large objects
// are persisted as a sequence of chunk records — each at most
// store.MaxObjectSize — sealed by a chunk-stub object record and the
// metadata record committed in one atomic batch per replica. A crash
// mid-stream therefore never publishes a partial object: until the
// final batch lands, readers still see the previous version.
//
// Reads stream chunk records straight to the response writer with
// per-chunk integrity checks (each chunk record authenticates its
// chunk id, so chunks cannot be transplanted between objects,
// versions or positions) and a whole-object hash check at the end.
package core

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/kinetic/kclient"
	"repro/internal/policy/lang"
	"repro/internal/store"
)

// keyedLocks is a map of per-key mutexes with reference counting:
// streamed uploads of one key serialize against each other without
// tying up the shared write-lock stripes for the (client-paced)
// duration of an upload.
type keyedLocks struct {
	mu sync.Mutex
	m  map[string]*keyedLock
}

type keyedLock struct {
	mu   sync.Mutex
	refs int
}

// lock acquires the key's mutex, creating it on first use; the
// returned function releases it and drops the entry when unused.
func (k *keyedLocks) lock(key string) (unlock func()) {
	k.mu.Lock()
	if k.m == nil {
		k.m = make(map[string]*keyedLock)
	}
	e := k.m[key]
	if e == nil {
		e = &keyedLock{}
		k.m[key] = e
	}
	e.refs++
	k.mu.Unlock()
	e.mu.Lock()
	return func() {
		e.mu.Unlock()
		k.mu.Lock()
		if e.refs--; e.refs == 0 {
			delete(k.m, key)
		}
		k.mu.Unlock()
	}
}

// streamChunkSize is the payload carried by one chunk record: the
// largest value one Kinetic put accepts.
const streamChunkSize = store.MaxObjectSize

// chunkBufs pools the per-upload chunk buffers. Every v2 put flows
// through the streaming entry point, so allocating the full chunk
// size per request (1 MB for a 1 KB value) becomes pure GC pressure
// under write-heavy load; the pool bounds it to one buffer per
// concurrent upload.
var chunkBufs = sync.Pool{
	New: func() any {
		b := make([]byte, streamChunkSize)
		return &b
	},
}

// DefaultMaxStreamBytes caps a streamed object when Config leaves
// MaxStreamBytes zero.
const DefaultMaxStreamBytes = 256 << 20

// PutStream stores an object of unknown size read from body. Values
// up to store.MaxObjectSize land inline (byte-identical to Put);
// larger values switch to chunk records transparently. Returns the
// new version through the unified result shape.
func (s *Session) PutStream(ctx context.Context, key string, body io.Reader, opts PutOptions) OpResult {
	s.touch()
	ver, err := s.ctl.putObjectStream(ctx, s.clientKey, key, body, opts)
	return OpResult{Key: JSONKey(key), Version: ver, Err: wireError(err)}
}

// GetStream opens an object for streaming: it returns the metadata
// and a send function writing the payload to w. Policy checks and
// version selection happen before the first byte is produced, so the
// caller can emit headers from the metadata and then stream.
func (s *Session) GetStream(ctx context.Context, key string, opts GetOptions) (*store.Meta, func(io.Writer) error, error) {
	s.touch()
	return s.ctl.getObjectStream(ctx, s.clientKey, key, opts)
}

func (c *Controller) maxStreamBytes() int64 {
	if c.cfg.MaxStreamBytes > 0 {
		return c.cfg.MaxStreamBytes
	}
	return DefaultMaxStreamBytes
}

// putObjectStream is the streamed write path. The body arrives at the
// client's pace, so the shared write-lock stripes are NOT held across
// the upload (a stalled uploader must never block unrelated writers):
// concurrent streamed uploads of one key serialize on a dedicated
// per-key stream lock, version planning and the final commit each take
// the stripe lock briefly, and the metadata compare-and-swap rejects
// the commit if a buffered writer won the key in between (the loser
// sweeps its chunks and reports a version conflict).
func (c *Controller) putObjectStream(ctx context.Context, sessionKey, key string, body io.Reader, opts PutOptions) (int64, error) {
	unlockStream := c.streamLocks.lock(key)
	defer unlockStream()

	// Sharding fast-fail before any chunk is uploaded; the
	// authoritative gate (ownership + freeze barrier) runs again at
	// commitStream, so a handoff racing the upload still redirects.
	if err := c.checkOwned(key); err != nil {
		return 0, err
	}

	bufp := chunkBufs.Get().(*[]byte)
	defer chunkBufs.Put(bufp)
	buf := *bufp
	n, rerr := io.ReadFull(body, buf)
	if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
		// The whole value fits one record: hand it to the buffered
		// write path, so small streamed puts are byte-identical to
		// buffered puts. The payload is copied out at its real size —
		// the cache may retain it, the pooled buffer must not escape.
		return c.putObject(ctx, sessionKey, key, append([]byte(nil), buf[:n]...), opts)
	}
	if rerr != nil {
		return 0, rerr
	}
	// The first chunk filled completely; peek one byte to tell a body
	// of exactly one chunk (still inline) from a genuinely larger one.
	var peek [1]byte
	if _, perr := io.ReadFull(body, peek[:]); perr == io.EOF {
		return c.putObject(ctx, sessionKey, key, append([]byte(nil), buf...), opts)
	} else if perr != nil {
		return 0, perr
	}
	rest := io.MultiReader(bytes.NewReader(peek[:]), body)

	// Plan the version under the stripe lock, briefly. This early pass
	// rejects doomed uploads (bad version, policy denial, unknown
	// policy) before any chunk is persisted; the authoritative plan is
	// re-run under the lock at commit time (see commitStream).
	lock := c.writeLock(key)
	lock.Lock()
	meta, next, err := c.planVersion(ctx, sessionKey, key, opts)
	if err == nil {
		_, _, err = c.resolvePolicy(ctx, meta, opts.PolicyID)
	}
	lock.Unlock()
	if err != nil {
		return 0, err
	}
	placement := c.placement(key)

	// Storage-class selection. The body's size is unknown until EOF,
	// so with EC enabled the upload is read ahead until it either ends
	// (→ fully replicated, it is small) or crosses the EC threshold
	// (→ erasure-coded) — the class is part of the committed layout
	// and cannot change mid-object, so no chunk record lands before
	// the decision.
	sniffed := [][]byte{buf}
	eofSeen := false
	useEC := false
	if c.cfg.EC {
		sniffBytes := int64(len(buf))
		var extra []*[]byte
		defer func() {
			for _, bp := range extra {
				chunkBufs.Put(bp)
			}
		}()
		for sniffBytes < c.cfg.ECMinBytes {
			bp := chunkBufs.Get().(*[]byte)
			extra = append(extra, bp)
			sn, serr := io.ReadFull(rest, *bp)
			if sn > 0 {
				sniffed = append(sniffed, (*bp)[:sn])
				sniffBytes += int64(sn)
			}
			if serr == io.EOF || serr == io.ErrUnexpectedEOF {
				eofSeen = true
				break
			}
			if serr != nil {
				return 0, serr
			}
		}
		useEC = sniffBytes >= c.cfg.ECMinBytes
	}
	if useEC {
		return c.putStreamEC(ctx, sessionKey, key, opts, next, sniffed, rest, eofSeen)
	}

	// Chunked path. Chunks are force-put (content-addressed by
	// version+index, invisible until the final meta commit); the stub
	// object record and the CAS-guarded metadata commit atomically at
	// the end. On failure the written chunks are swept best-effort —
	// they were never reachable.
	hasher := sha256.New()
	var total int64
	var chunks int64
	cleanup := func() {
		// The request context may already be canceled (client
		// disconnect is a common way to get here); sweep on a detached
		// context so the orphaned chunks don't outlive the upload.
		sweepCtx := context.WithoutCancel(ctx)
		_ = c.fanout(placement, func(di int) error {
			cl := c.drives[di].pick()
			for idx := int64(0); idx < chunks; idx++ {
				c.chargeDriveIO(0)
				_ = cl.Delete(sweepCtx, store.ChunkKey(key, next, idx), nil, true)
			}
			return nil
		})
	}
	writeChunk := func(chunk []byte) error {
		total += int64(len(chunk))
		if total > c.maxStreamBytes() {
			return fmt.Errorf("%w: cap is %d bytes", ErrStreamTooLarge, c.maxStreamBytes())
		}
		c.cost.MoveBytes(len(chunk))
		hasher.Write(chunk)
		chunkMeta := store.Meta{
			Key: store.ChunkID(key, next, chunks), Version: next,
			Size: int64(len(chunk)), ContentHash: store.HashContent(chunk),
		}
		blob, err := c.codec.EncodeRecord(&store.Record{Meta: chunkMeta, Payload: chunk})
		if err != nil {
			return err
		}
		dk := store.ChunkKey(key, next, chunks)
		err = c.fanout(placement, func(di int) error {
			cl := c.drives[di].pick()
			c.chargeDriveIO(len(blob))
			if err := cl.Put(ctx, dk, blob, nil, encodeVer(next), true); err != nil {
				return fmt.Errorf("core: stream chunk %d of %q to drive %s: %w", chunks, key, c.drives[di].name, err)
			}
			return nil
		})
		if err != nil {
			return c.replicationFailed(err, key)
		}
		chunks++
		return nil
	}
	for _, chunk := range sniffed { // chunks already read by the class sniff
		if err := writeChunk(chunk); err != nil {
			cleanup()
			return 0, err
		}
	}
	for !eofSeen {
		n, rerr = io.ReadFull(rest, buf)
		if rerr != nil && rerr != io.EOF && rerr != io.ErrUnexpectedEOF {
			cleanup()
			return 0, rerr
		}
		if rerr != nil {
			eofSeen = true
		}
		if n > 0 {
			if err := writeChunk(buf[:n]); err != nil {
				cleanup()
				return 0, err
			}
		}
	}

	var hash [32]byte
	copy(hash[:], hasher.Sum(nil))
	intact := func(pctx context.Context) error {
		return c.chunksIntact(pctx, key, next, chunks, placement)
	}
	if err := c.commitStream(ctx, sessionKey, key, opts, next, total, hash, chunks, 0, 0, intact); err != nil {
		cleanup()
		return 0, err
	}
	c.noteWrite(key, int(total))
	c.stats.Puts.Inc()
	c.stats.Streams.Inc()
	c.stats.WriteBytes.Add(uint64(total))
	return next, nil
}

// commitStream seals a chunked upload under the stripe lock. The
// version CAS alone cannot distinguish the planned object from a
// same-version impostor created by a delete+recreate during the
// (lock-free) upload — an ABA that would both bypass the recreated
// object's update policy and publish metadata whose chunks the delete
// already swept. So the plan is re-run under the lock (re-checking the
// now-current policy and version) and the chunk records are probed for
// survival before the sealing batch — chunk-stub object record plus
// CAS-guarded metadata, atomic per replica — goes out. The intact
// probe is layout-specific (replicated chunks probe the placement
// drives, EC shards their group homes); eck/ecm record the storage
// class in the metadata (zero for replicated).
func (c *Controller) commitStream(ctx context.Context, sessionKey, key string, opts PutOptions, next, total int64, hash [32]byte, chunks, eck, ecm int64, intact func(context.Context) error) error {
	lock := c.writeLock(key)
	lock.Lock()
	defer lock.Unlock()

	release, err := c.beginWrite(ctx, key)
	if err != nil {
		return err
	}
	defer release()

	meta2, next2, err := c.planVersion(ctx, sessionKey, key, opts)
	if err != nil {
		return err
	}
	if next2 != next {
		return fmt.Errorf("%w: concurrent update during streamed upload", ErrBadVersion)
	}
	newPolicyID, policyHash, err := c.resolvePolicy(ctx, meta2, opts.PolicyID)
	if err != nil {
		return err
	}
	if err := intact(ctx); err != nil {
		return err
	}

	newMeta := &store.Meta{
		Key: key, Version: next, Size: total, ContentHash: hash,
		PolicyID: newPolicyID, PolicyHash: policyHash, Chunks: chunks,
		ECK: eck, ECM: ecm,
	}
	stub := &store.Record{Meta: *newMeta}
	stubBlob, err := c.codec.EncodeRecord(stub)
	if err != nil {
		return err
	}
	w := &replicaWrite{key: key, next: next, blob: stubBlob, metaRec: newMeta.Marshal()}
	if meta2 != nil {
		w.prev = encodeVer(meta2.Version)
	}
	if err := c.writeThrough(ctx, w); err != nil {
		return err
	}
	c.publishWrite(stub)
	return nil
}

// chunksIntact verifies the upload's chunk records still exist on
// every replica (a concurrent delete sweeps the whole chunk range, so
// probing the first and last chunk suffices per drive). Caller holds
// the stripe lock, so no new delete can race the probe.
func (c *Controller) chunksIntact(ctx context.Context, key string, next, chunks int64, placement []int) error {
	probes := []int64{0}
	if chunks > 1 {
		probes = append(probes, chunks-1)
	}
	return c.fanout(placement, func(di int) error {
		cl := c.drives[di].pick()
		for _, idx := range probes {
			c.chargeDriveIO(0)
			if _, err := cl.GetVersion(ctx, store.ChunkKey(key, next, idx)); err != nil {
				if errors.Is(err, kclient.ErrNotFound) {
					return fmt.Errorf("%w: object deleted during streamed upload", ErrBadVersion)
				}
				return err
			}
		}
		return nil
	})
}

// getObjectStream is the streamed read path.
func (c *Controller) getObjectStream(ctx context.Context, sessionKey, key string, opts GetOptions) (*store.Meta, func(io.Writer) error, error) {
	if err := c.checkOwned(key); err != nil {
		return nil, nil, err
	}
	meta, err := c.loadMeta(ctx, key)
	if err != nil {
		return nil, nil, err
	}
	if err := c.checkPolicy(ctx, lang.PermRead, sessionKey, key, meta, nil, opts.Certs); err != nil {
		return nil, nil, err
	}
	version := meta.Version
	if opts.HasVersion {
		version = opts.Version
	}
	rec, err := c.loadRecord(ctx, key, version)
	if err != nil {
		return nil, nil, err
	}
	m := rec.Meta
	if m.Chunks == 0 {
		send := func(w io.Writer) error {
			c.cost.MoveBytes(len(rec.Payload))
			_, err := w.Write(rec.Payload)
			return err
		}
		c.noteRead(key, len(rec.Payload))
		c.stats.Gets.Inc()
		c.stats.ReadBytes.Add(uint64(len(rec.Payload)))
		return &m, send, nil
	}
	if m.ECK > 0 {
		return c.getStreamEC(ctx, key, version, &m)
	}
	send := func(w io.Writer) error {
		hasher := sha256.New()
		for idx := int64(0); idx < m.Chunks; idx++ {
			crec, release, err := c.loadChunkPooled(ctx, key, version, idx)
			if err != nil {
				return err
			}
			c.cost.MoveBytes(len(crec.Payload))
			hasher.Write(crec.Payload)
			_, werr := w.Write(crec.Payload)
			release()
			if werr != nil {
				return werr
			}
		}
		var hash [32]byte
		copy(hash[:], hasher.Sum(nil))
		if hash != m.ContentHash {
			// Bytes are already on the wire; the returned error must
			// abort the connection so the client sees a truncated
			// transfer, never a silently wrong object.
			return fmt.Errorf("%w: streamed object %q v%d fails whole-object hash", store.ErrCorrupt, key, version)
		}
		return nil
	}
	c.noteRead(key, int(m.Size))
	c.stats.Gets.Inc()
	c.stats.Streams.Inc()
	c.stats.ReadBytes.Add(uint64(m.Size))
	return &m, send, nil
}

// loadChunk fetches one chunk record, cache-first with replica
// failover through the configured read engine, verifying the chunk's
// own hash and its authenticated chunk id (position binding).
// Concurrent misses on one chunk coalesce into a single drive read.
func (c *Controller) loadChunk(ctx context.Context, key string, version, idx int64) (*store.Record, error) {
	dk := store.ChunkKey(key, version, idx)
	ck := string(dk)
	if r, ok := c.objectCache.Get(ck); ok {
		return r, nil
	}
	rec, shared, err := c.objectFlight.Do(ctx, ck,
		func(fctx context.Context) (*store.Record, error) {
			if r, ok := c.objectCache.Get(ck); ok {
				return r, nil
			}
			return c.fetchChunk(fctx, key, version, idx, dk)
		},
		func(r *store.Record) { c.objectCache.Put(ck, r) })
	if shared {
		c.stats.CoalescedReads.Inc()
	}
	return rec, err
}

// fetchChunk reads one chunk record off the drives.
func (c *Controller) fetchChunk(ctx context.Context, key string, version, idx int64, dk []byte) (*store.Record, error) {
	placement := c.placement(key)
	wantID := store.ChunkID(key, version, idx)
	rec, err := readReplicas(ctx, c, placement, func(ctx context.Context, p *drivePool) (*store.Record, error) {
		cl := p.pick()
		c.chargeDriveIO(0)
		val, _, err := cl.Get(ctx, dk)
		if errors.Is(err, kclient.ErrNotFound) {
			return nil, fmt.Errorf("%w: %q v%d chunk %d", ErrNotFound, key, version, idx)
		}
		if err != nil {
			return nil, err
		}
		c.cost.MoveBytes(len(val))
		rec, err := c.codec.DecodeRecord(val)
		if err != nil {
			return nil, err
		}
		if rec.Meta.Key != wantID || store.HashContent(rec.Payload) != rec.Meta.ContentHash {
			return nil, store.ErrCorrupt
		}
		return rec, nil
	})
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return nil, err
		}
		return nil, fmt.Errorf("core: all replicas failed reading %q v%d chunk %d: %w", key, version, idx, err)
	}
	return rec, nil
}

// loadChunkPooled is loadChunk for the streamed GET hot path: a cache
// hit is served as-is, a miss decodes into a pooled chunk buffer the
// caller hands back via release, and the record is neither cached nor
// coalesced — a pooled payload must have exactly one owner, and
// streamed reads are large and sequential, so per-chunk caching buys
// little against 1 MB of allocation per chunk. A hedged attempt that
// loses the race strands its buffer for the GC (rare: hedges fire on
// the latency tail only).
func (c *Controller) loadChunkPooled(ctx context.Context, key string, version, idx int64) (*store.Record, func(), error) {
	dk := store.ChunkKey(key, version, idx)
	if r, ok := c.objectCache.Get(string(dk)); ok {
		return r, func() {}, nil
	}
	wantID := store.ChunkID(key, version, idx)
	placement := c.placement(key)
	pr, err := readReplicas(ctx, c, placement, func(ctx context.Context, p *drivePool) (pooledRec, error) {
		cl := p.pick()
		c.chargeDriveIO(0)
		val, _, err := cl.Get(ctx, dk)
		if errors.Is(err, kclient.ErrNotFound) {
			return pooledRec{}, fmt.Errorf("%w: %q v%d chunk %d", ErrNotFound, key, version, idx)
		}
		if err != nil {
			return pooledRec{}, err
		}
		c.cost.MoveBytes(len(val))
		return c.decodeChunkPooled(val, wantID)
	})
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("core: all replicas failed reading %q v%d chunk %d: %w", key, version, idx, err)
	}
	return pr.rec, pr.release, nil
}

// verifyChunks recomputes a streamed version's whole-object hash from
// its chunk records (the verification interface's equivalent of the
// inline hash check).
func (c *Controller) verifyChunks(ctx context.Context, m *store.Meta) error {
	if m.ECK > 0 {
		return c.verifyStripesEC(ctx, m)
	}
	hasher := sha256.New()
	var total int64
	for idx := int64(0); idx < m.Chunks; idx++ {
		rec, err := c.loadChunk(ctx, m.Key, m.Version, idx)
		if err != nil {
			return err
		}
		hasher.Write(rec.Payload)
		total += int64(len(rec.Payload))
	}
	var hash [32]byte
	copy(hash[:], hasher.Sum(nil))
	if total != m.Size || hash != m.ContentHash {
		return store.ErrCorrupt
	}
	return nil
}
