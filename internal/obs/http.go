package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler builds the daemons' observability mux: GET /metrics in the
// Prometheus text format, plus /debug/pprof behind a loopback-only
// peer check. All three daemons (pesos, kineticd, attestd) mount this
// on a side listener; profiling endpoints leak memory contents, so —
// like the kineticd chaos endpoint — pprof answers loopback peers
// only even if the listener is misconfigured onto a routable address.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	guard := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, req *http.Request) {
			host, _, err := net.SplitHostPort(req.RemoteAddr)
			if err != nil || !net.ParseIP(host).IsLoopback() {
				http.Error(w, "pprof is loopback-only", http.StatusForbidden)
				return
			}
			h(w, req)
		}
	}
	mux.HandleFunc("/debug/pprof/", guard(pprof.Index))
	mux.HandleFunc("/debug/pprof/cmdline", guard(pprof.Cmdline))
	mux.HandleFunc("/debug/pprof/profile", guard(pprof.Profile))
	mux.HandleFunc("/debug/pprof/symbol", guard(pprof.Symbol))
	mux.HandleFunc("/debug/pprof/trace", guard(pprof.Trace))
	return mux
}

// Serve starts the observability endpoint on addr. The listener
// itself may be non-loopback (Prometheus scrapes over the network);
// pprof stays loopback-gated per request regardless.
func Serve(addr string, r *Registry) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(r)}
	go srv.Serve(ln)
	return srv, nil
}
