package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of histogram buckets. Bounds grow in
// powers of two from 1µs (bucket 0 ≤ 1µs, bucket 26 ≤ ~67s); the
// last bucket is +Inf. Log bucketing bounds the relative quantile
// error at 2× — the right trade for latency, where the interesting
// signal spans six orders of magnitude.
const HistBuckets = 28

// BucketBound returns bucket i's upper bound in nanoseconds
// (undefined for the +Inf bucket, i == HistBuckets-1).
func BucketBound(i int) int64 { return 1000 << uint(i) }

// bucketIndex maps a duration to its bucket: the smallest i with
// d ≤ BucketBound(i), overflow in the +Inf bucket.
func bucketIndex(d time.Duration) int {
	n := d.Nanoseconds()
	if n <= 1000 {
		return 0
	}
	q := (uint64(n) + 999) / 1000
	i := bits.Len64(q - 1)
	if i > HistBuckets-1 {
		i = HistBuckets - 1
	}
	return i
}

// Histogram is a lock-free log-bucketed latency histogram: fixed
// atomic bucket counters plus sum and count. Zero value ready.
// Recording is wait-free; Snapshot reads the counters without a lock,
// so a snapshot taken under concurrent recording is approximate (each
// word individually exact, the set not cut at one instant) — the
// standard monitoring trade.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	buckets [HistBuckets]atomic.Uint64
}

// Observe records one duration (negative clamps to zero).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(uint64(d.Nanoseconds()))
	h.buckets[bucketIndex(d)].Add(1)
}

// Snapshot copies the histogram's counters.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram: plain
// words, safe to merge and query off the hot path.
type HistogramSnapshot struct {
	Count   uint64
	Sum     time.Duration
	Buckets [HistBuckets]uint64
}

// Merge returns the element-wise sum of two snapshots. Merging is
// commutative and associative — per-shard or per-drive histograms
// aggregate in any order to the same result.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	return s
}

// Mean returns the average recorded duration.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation within the containing log bucket; the estimate is
// within a factor of two of the true value by construction.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo := int64(0)
			if i > 0 {
				lo = BucketBound(i - 1)
			}
			hi := BucketBound(i)
			if i == HistBuckets-1 {
				hi = 2 * lo // open-ended; assume one octave
			}
			frac := (rank - float64(cum)) / float64(n)
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		cum += n
	}
	return time.Duration(BucketBound(HistBuckets - 2))
}
