package obs

import (
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramConcurrentQuantiles records a known distribution from
// many goroutines and checks that no sample is lost and the quantile
// estimates stay within the log-bucket error bound (a factor of two).
func TestHistogramConcurrentQuantiles(t *testing.T) {
	h := &Histogram{}
	const workers = 16
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Uniform 1..10ms, identical per worker so the global
				// distribution matches the per-worker one.
				d := time.Duration(1+i%10) * time.Millisecond
				h.Observe(d)
			}
		}(w)
	}
	wg.Wait()

	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("lost samples under concurrency: count=%d want %d", s.Count, workers*perWorker)
	}
	var bucketTotal uint64
	for _, b := range s.Buckets {
		bucketTotal += b
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketTotal, s.Count)
	}
	wantMean := 5500 * time.Microsecond
	if m := s.Mean(); m != wantMean {
		t.Fatalf("mean=%v want %v (sum is exact)", m, wantMean)
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 5 * time.Millisecond},
		{0.9, 9 * time.Millisecond},
		{0.99, 10 * time.Millisecond},
	}
	for _, c := range checks {
		got := s.Quantile(c.q)
		if got < c.want/2 || got > c.want*2 {
			t.Errorf("q%.2f=%v outside [%v, %v]", c.q, got, c.want/2, c.want*2)
		}
	}
}

// TestSnapshotMergeAssociative checks (a⊕b)⊕c == a⊕(b⊕c) == c⊕(a⊕b):
// merged per-shard snapshots must not depend on aggregation order.
func TestSnapshotMergeAssociative(t *testing.T) {
	mk := func(seed int) HistogramSnapshot {
		h := &Histogram{}
		for i := 0; i < 500; i++ {
			h.Observe(time.Duration((seed*31+i*7)%20000) * time.Microsecond)
		}
		return h.Snapshot()
	}
	a, b, c := mk(1), mk(2), mk(3)
	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	rot := c.Merge(a.Merge(b))
	if left != right || left != rot {
		t.Fatalf("merge is not associative/commutative:\nleft=%+v\nright=%+v\nrot=%+v", left, right, rot)
	}
	if left.Count != a.Count+b.Count+c.Count {
		t.Fatalf("merged count %d != %d", left.Count, a.Count+b.Count+c.Count)
	}
	// Quantiles of a merge are computed on the merged buckets.
	if q := left.Quantile(0.5); q <= 0 {
		t.Fatalf("merged quantile should be positive, got %v", q)
	}
}

// TestBucketIndexBounds pins the bucket mapping at the boundaries.
func TestBucketIndexBounds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{4096 * time.Microsecond, 12},
		{4097 * time.Microsecond, 13},
		{time.Hour, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v)=%d want %d", c.d, got, c.want)
		}
	}
	for i := 0; i < HistBuckets-1; i++ {
		if got := bucketIndex(time.Duration(BucketBound(i))); got != i {
			t.Errorf("bound %d maps to bucket %d, want %d", BucketBound(i), got, i)
		}
	}
}

// promLine matches the sample lines of the text exposition format.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\\n]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\\n]*")*\})? (?:[0-9.eE+-]+|NaN|\+Inf|-Inf)$`)

// lintPromText is the repo's no-dependency promtext lint: every line
// is a HELP, TYPE or well-formed sample line; HELP/TYPE precede their
// family's samples exactly once; histogram families expose _bucket,
// _sum and _count with a final le="+Inf".
func lintPromText(t *testing.T, text string) {
	t.Helper()
	typed := map[string]string{}
	helped := map[string]bool{}
	sampled := map[string]bool{}
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(parts) != 2 || parts[0] == "" {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			if helped[parts[0]] {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, parts[0])
			}
			helped[parts[0]] = true
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(line[len("# TYPE "):])
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, typ := parts[0], parts[1]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("line %d: unknown type %q", ln+1, typ)
			}
			if _, dup := typed[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			if sampled[name] {
				t.Fatalf("line %d: TYPE for %s after its samples", ln+1, name)
			}
			typed[name] = typ
		default:
			if !promLine.MatchString(line) {
				t.Fatalf("line %d: malformed sample line: %q", ln+1, line)
			}
			name := line
			if i := strings.IndexAny(name, "{ "); i >= 0 {
				name = name[:i]
			}
			family := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if base := strings.TrimSuffix(name, suffix); base != name {
					if typed[base] == "histogram" {
						family = base
					}
				}
			}
			if _, ok := typed[family]; !ok {
				t.Fatalf("line %d: sample %s has no TYPE", ln+1, name)
			}
			sampled[family] = true
		}
	}
	for name := range typed {
		if !helped[name] {
			t.Fatalf("family %s has TYPE but no HELP", name)
		}
	}
}

// TestWritePrometheusLint scrapes a registry exercising every metric
// kind, label handling included, through the promtext lint.
func TestWritePrometheusLint(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pesos_ops_total", "Operations served.")
	c.Add(42)
	for _, op := range []string{"get", "put"} {
		op := op
		r.CounterFunc(fmt.Sprintf(`pesos_typed_ops_total{op=%q}`, op), "Operations by type.", func() uint64 { return 7 })
	}
	r.GaugeFunc("pesos_cache_bytes", "Cache residency.", func() float64 { return 123.5 })
	h := r.Histogram(`pesos_request_seconds{op="get"}`, "Request latency.")
	h.Observe(3 * time.Millisecond)
	h.Observe(40 * time.Microsecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	lintPromText(t, text)

	for _, want := range []string{
		"pesos_ops_total 42",
		`pesos_typed_ops_total{op="get"} 7`,
		"pesos_cache_bytes 123.5",
		`pesos_request_seconds_bucket{op="get",le="+Inf"} 2`,
		`pesos_request_seconds_count{op="get"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q:\n%s", want, text)
		}
	}
}

// TestRegistryReplace confirms re-registering a name replaces the
// series instead of duplicating it (restart-safe registration).
func TestRegistryReplace(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("x_total", "X.", func() uint64 { return 1 })
	r.CounterFunc("x_total", "X.", func() uint64 { return 2 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples := 0
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "x_total ") {
			samples++
		}
	}
	if samples != 1 || !strings.Contains(b.String(), "x_total 2") {
		t.Fatalf("replacement failed:\n%s", b.String())
	}
}
