// Package obs is the observability layer: a lock-free metrics
// registry (atomic counters, gauges, log-bucketed latency histograms
// with mergeable snapshots) behind a hand-rolled Prometheus text
// endpoint, end-to-end request tracing with a ring-buffer trace
// store, and the sealed, hash-chained audit decision log.
//
// The hot paths are allocation- and lock-free: a Counter is one
// atomic word, a Histogram a fixed array of them. Registration and
// scraping take the registry mutex; recording never does. Everything
// here is stdlib-only — the controller runs inside an enclave and the
// daemons ship without third-party dependencies.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter: one atomic word,
// zero-value ready. It embeds nothing and takes no lock, so structs
// of Counters (core.Stats, cluster.RouterStats) stay hot-path free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Max raises the value to n if n is greater — for high-water marks
// (the router's worst per-op redirect count) that live alongside true
// counters.
func (c *Counter) Max(n uint64) {
	for {
		cur := c.v.Load()
		if n <= cur || c.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// metricKind discriminates the registry's sample types.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered sample series. name may carry a Prometheus
// label suffix ("pesos_ops_total{op=\"get\"}"); family is the name up
// to the label brace, under which HELP/TYPE are emitted once.
type metric struct {
	name   string
	family string
	help   string
	kind   metricKind

	counterFn func() uint64
	gaugeFn   func() float64
	hist      *Histogram
}

// Registry holds the process's metric series and renders them in the
// Prometheus text exposition format.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	index   map[string]int // full name -> metrics index
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]int)}
}

// familyOf strips a label suffix from a full sample name.
func familyOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// register installs (or replaces) a metric under its full name.
func (r *Registry) register(m *metric) {
	if r == nil {
		return
	}
	m.family = familyOf(m.name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.index[m.name]; ok {
		r.metrics[i] = m
		return
	}
	r.index[m.name] = len(r.metrics)
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a new counter. Nil registries return
// a usable (unregistered) counter, so callers never branch.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.RegisterCounter(name, help, c)
	return c
}

// RegisterCounter registers an existing counter — how core.Stats and
// cluster.RouterStats re-home their fields on the registry without
// moving them.
func (r *Registry) RegisterCounter(name, help string, c *Counter) {
	r.register(&metric{name: name, help: help, kind: kindCounter, counterFn: c.Load})
}

// CounterFunc registers a counter read through a callback (drive
// stats, cache counters — sources that already own their atomics).
func (r *Registry) CounterFunc(name, help string, f func() uint64) {
	r.register(&metric{name: name, help: help, kind: kindCounter, counterFn: f})
}

// GaugeFunc registers a gauge read through a callback.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.register(&metric{name: name, help: help, kind: kindGauge, gaugeFn: f})
}

// Histogram registers and returns a new latency histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	r.RegisterHistogram(name, help, h)
	return h
}

// RegisterHistogram registers an existing histogram.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) {
	r.register(&metric{name: name, help: help, kind: kindHistogram, hist: h})
}

// WritePrometheus renders every registered series in the text
// exposition format, grouped by family with HELP/TYPE emitted once
// per family, families in name order (scrape-stable output).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()

	sort.SliceStable(metrics, func(i, j int) bool { return metrics[i].family < metrics[j].family })
	var b strings.Builder
	lastFamily := ""
	for _, m := range metrics {
		if m.family != lastFamily {
			lastFamily = m.family
			fmt.Fprintf(&b, "# HELP %s %s\n", m.family, m.help)
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.family, typeName(m.kind))
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.counterFn())
		case kindGauge:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatFloat(m.gaugeFn()))
		case kindHistogram:
			writeHistogram(&b, m.name, m.hist.Snapshot())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func typeName(k metricKind) string {
	switch k {
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// writeHistogram renders one histogram's cumulative buckets, sum and
// count. Bucket bounds are seconds, as Prometheus conventions expect.
func writeHistogram(b *strings.Builder, name string, s HistogramSnapshot) {
	base, labels := splitLabels(name)
	cum := uint64(0)
	for i := 0; i < HistBuckets-1; i++ {
		cum += s.Buckets[i]
		le := formatFloat(float64(BucketBound(i)) / 1e9)
		fmt.Fprintf(b, "%s_bucket%s %d\n", base, withLabel(labels, "le", le), cum)
	}
	cum += s.Buckets[HistBuckets-1]
	fmt.Fprintf(b, "%s_bucket%s %d\n", base, withLabel(labels, "le", "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", base, labels, formatFloat(s.Sum.Seconds()))
	fmt.Fprintf(b, "%s_count%s %d\n", base, labels, s.Count)
}

// splitLabels separates "name{a=\"b\"}" into name and "{a=\"b\"}".
func splitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// withLabel appends one label to an existing (possibly empty) label
// set.
func withLabel(labels, key, value string) string {
	pair := key + `="` + value + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
