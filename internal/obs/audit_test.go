package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testAuditKey() [32]byte { return DeriveAuditKey([]byte("test-secret")) }

// fillAudit writes n records through a fresh log and closes it.
func fillAudit(t *testing.T, dir string, n int, segBytes int64) {
	t.Helper()
	a, err := OpenAudit(AuditConfig{Dir: dir, Key: testAuditKey(), MaxSegmentBytes: segBytes, SampleAllow: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		dec := "deny"
		if i%3 == 0 {
			dec = "allow"
		}
		a.Record(AuditRecord{
			TraceID: FormatTraceID(NewTraceID()), Client: "sha256:abcd", Op: "put",
			Key: fmt.Sprintf("tenants/%d/object-%d", i%4, i), Decision: dec,
			Reason: "rule r2: key prefix", PolicyID: "p1",
		})
	}
	a.Sync()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAuditRoundTripAndRotation(t *testing.T) {
	dir := t.TempDir()
	fillAudit(t, dir, 60, 512) // tiny segments force rotation

	segs, err := auditSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation into >=3 segments, got %d", len(segs))
	}
	n, err := VerifyAudit(dir, testAuditKey())
	if err != nil {
		t.Fatalf("verify failed on a healthy log: %v", err)
	}
	// 40 denies always + 1-in-2 of 20 allows.
	if n < 40 || n > 60 {
		t.Fatalf("implausible entry count %d", n)
	}
	recs, err := ReadAudit(dir, testAuditKey(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("tail returned %d records", len(recs))
	}
	for i, r := range recs {
		if r.Seq != n-4+uint64(i) {
			t.Fatalf("tail out of order: %+v", recs)
		}
		if r.Client == "" || r.Key == "" || r.TraceID == "" {
			t.Fatalf("record lost fields through seal round trip: %+v", r)
		}
	}
}

func TestAuditResumeAppends(t *testing.T) {
	dir := t.TempDir()
	fillAudit(t, dir, 10, 1<<20)
	n1, err := VerifyAudit(dir, testAuditKey())
	if err != nil {
		t.Fatal(err)
	}
	fillAudit(t, dir, 10, 1<<20) // reopen resumes the chain
	n2, err := VerifyAudit(dir, testAuditKey())
	if err != nil {
		t.Fatalf("verify failed after resume: %v", err)
	}
	if n2 <= n1 {
		t.Fatalf("resume did not append: %d -> %d", n1, n2)
	}
}

// TestAuditTamperByteFlip flips a single byte in a rotated (non-tail)
// segment and checks the verifier reports the seal break.
func TestAuditTamperByteFlip(t *testing.T) {
	dir := t.TempDir()
	fillAudit(t, dir, 60, 512)
	segs, err := auditSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("need rotated segments: %v (%d)", err, len(segs))
	}
	victim := segs[0]
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(victim, data, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyAudit(dir, testAuditKey()); err == nil {
		t.Fatal("verify passed on a tampered segment")
	} else if !strings.Contains(err.Error(), "seal broken") && !strings.Contains(err.Error(), "implausible") {
		t.Fatalf("unexpected tamper error: %v", err)
	}
	// A tampered log must refuse to resume appending.
	if _, err := OpenAudit(AuditConfig{Dir: dir, Key: testAuditKey()}); err == nil {
		t.Fatal("OpenAudit resumed a tampered log")
	}
}

// TestAuditTailTruncation chops the last entry off the tail segment;
// the chain itself still verifies on the prefix, so detection must
// come from the HEAD pin.
func TestAuditTailTruncation(t *testing.T) {
	dir := t.TempDir()
	fillAudit(t, dir, 10, 1<<20)
	segs, err := auditSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("expected one segment: %v (%d)", err, len(segs))
	}
	// Re-verify to find entry boundaries, then drop the final entry.
	recs, err := ReadAudit(dir, testAuditKey(), 0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Walk length prefixes to the start of the last entry.
	off, last := 0, 0
	for off < len(data) {
		last = off
		n := int(uint32(data[off])<<24 | uint32(data[off+1])<<16 | uint32(data[off+2])<<8 | uint32(data[off+3]))
		off += 4 + n
	}
	if err := os.WriteFile(segs[0], data[:last], 0o600); err != nil {
		t.Fatal(err)
	}
	_, err = VerifyAudit(dir, testAuditKey())
	if err == nil {
		t.Fatalf("verify passed after truncating entry %d", len(recs))
	}
	if !strings.Contains(err.Error(), "truncated") && !strings.Contains(err.Error(), "HEAD pins") {
		t.Fatalf("unexpected truncation error: %v", err)
	}
}

// TestAuditHeadForgery rewrites HEAD to match a truncated log without
// the key; the HMAC must catch it.
func TestAuditHeadForgery(t *testing.T) {
	dir := t.TempDir()
	fillAudit(t, dir, 5, 1<<20)
	head := filepath.Join(dir, auditHeadFile)
	data, err := os.ReadFile(head)
	if err != nil {
		t.Fatal(err)
	}
	// Attacker edits the pinned seq (no key, MAC left stale).
	forged := strings.Replace(string(data), " ", "0 ", 1)
	if err := os.WriteFile(head, []byte(forged), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyAudit(dir, testAuditKey()); err == nil {
		t.Fatal("verify accepted a forged HEAD")
	}
}

func TestAuditWrongKey(t *testing.T) {
	dir := t.TempDir()
	fillAudit(t, dir, 3, 1<<20)
	if _, err := VerifyAudit(dir, DeriveAuditKey([]byte("other-secret"))); err == nil {
		t.Fatal("verify passed with the wrong key")
	}
}

func TestAuditDenySampling(t *testing.T) {
	dir := t.TempDir()
	// SampleAllow 0: allows dropped entirely, denies always kept.
	a, err := OpenAudit(AuditConfig{Dir: dir, Key: testAuditKey()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a.Record(AuditRecord{Client: "c", Op: "get", Key: "k", Decision: "allow"})
	}
	a.Record(AuditRecord{Client: "c", Op: "get", Key: "k", Decision: "deny"})
	a.Sync()
	a.Close()
	recs, err := ReadAudit(dir, testAuditKey(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Decision != "deny" {
		t.Fatalf("deny-only sampling broken: %+v", recs)
	}
}

func TestNilAuditLogNoops(t *testing.T) {
	var a *AuditLog
	a.Record(AuditRecord{Decision: "deny"})
	a.Sync()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}
