package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceIDRoundTrip(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("trace id 0 is reserved for 'absent'")
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %x", id)
		}
		seen[id] = true
		back, ok := ParseTraceID(FormatTraceID(id))
		if !ok || back != id {
			t.Fatalf("round trip %x -> %q -> %x ok=%v", id, FormatTraceID(id), back, ok)
		}
	}
	for _, bad := range []string{"", "zz", "00000000000000000", FormatTraceID(0)} {
		if _, ok := ParseTraceID(bad); ok {
			t.Errorf("ParseTraceID(%q) accepted garbage", bad)
		}
	}
}

func TestRouteInfoRoundTrip(t *testing.T) {
	ri := RouteInfo{Attempt: 3, Redirects: 1, Retargets: 2}
	got, ok := ParseRouteInfo(ri.String())
	if !ok || got != ri {
		t.Fatalf("round trip failed: %q -> %+v ok=%v", ri.String(), got, ok)
	}
	if _, ok := ParseRouteInfo(""); ok {
		t.Error("empty header parsed as valid")
	}
}

func TestTracerSpanTree(t *testing.T) {
	store := NewTraceStore(8)
	tr := NewTracer(TracerConfig{Store: store})

	ctx, root := tr.Start(context.Background(), "put", 0)
	id := TraceID(ctx)
	if id == 0 {
		t.Fatal("no trace id in context under active span")
	}

	pctx, policy := StartSpan(ctx, "policy_eval")
	policy.Attr("residual", "hit")
	_ = pctx
	policy.End()

	// Concurrent replica fan-out spans under one parent.
	rctx, rep := StartSpan(ctx, "replicate")
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			RecordSpan(rctx, "drive_media", time.Now(), 250*time.Microsecond,
				Attr{Key: "drive", Value: fmt.Sprintf("d%d", i)})
		}(i)
	}
	wg.Wait()
	rep.End()
	root.Attr("key", "users/7").End()

	trace := store.Get(id)
	if trace == nil {
		t.Fatal("completed trace not in store")
	}
	d := trace.Dump()
	if d.ID != FormatTraceID(id) {
		t.Fatalf("dump id %s want %s", d.ID, FormatTraceID(id))
	}
	if len(d.Spans) != 6 { // root + policy + replicate + 3 media
		t.Fatalf("span count %d want 6: %+v", len(d.Spans), d.Spans)
	}
	byName := map[string]SpanDump{}
	var rootSpan SpanDump
	for _, sp := range d.Spans {
		byName[sp.Name] = sp
		if sp.Parent == 0 {
			rootSpan = sp
		}
	}
	if rootSpan.Name != "put" || rootSpan.Attrs["key"] != "users/7" {
		t.Fatalf("bad root span %+v", rootSpan)
	}
	if byName["policy_eval"].Parent != rootSpan.ID || byName["policy_eval"].Attrs["residual"] != "hit" {
		t.Fatalf("bad policy span %+v", byName["policy_eval"])
	}
	if byName["drive_media"].Parent != byName["replicate"].ID {
		t.Fatalf("media span not under replicate: %+v", byName["drive_media"])
	}

	tree := FormatTree(d)
	for _, want := range []string{"put", "policy_eval", "replicate", "drive_media", "residual=hit"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
}

func TestTracerAdoptsCallerID(t *testing.T) {
	store := NewTraceStore(4)
	tr := NewTracer(TracerConfig{Store: store})
	want := NewTraceID()
	ctx, root := tr.Start(context.Background(), "get", want)
	if TraceID(ctx) != want {
		t.Fatalf("adopted id %x want %x", TraceID(ctx), want)
	}
	root.End()
	if store.Get(want) == nil {
		t.Fatal("trace with adopted id not retrievable")
	}
}

func TestNilTracerIsKillSwitch(t *testing.T) {
	var tr *Tracer
	ctx, root := tr.Start(context.Background(), "get", 0)
	if root != nil {
		t.Fatal("nil tracer produced a span")
	}
	if TraceID(ctx) != 0 {
		t.Fatal("nil tracer installed a trace id")
	}
	// All downstream calls must be no-ops, not panics.
	cctx, child := StartSpan(ctx, "child")
	child.Attr("k", "v").End()
	RecordSpan(cctx, "remote", time.Now(), time.Millisecond)
	root.Attr("k", "v")
	root.End()
}

func TestSlowOpLogged(t *testing.T) {
	var mu sync.Mutex
	var logged string
	tr := NewTracer(TracerConfig{
		Store:         NewTraceStore(4),
		SlowThreshold: time.Nanosecond,
		SlowLog: func(format string, args ...any) {
			mu.Lock()
			logged = fmt.Sprintf(format, args...)
			mu.Unlock()
		},
	})
	ctx, root := tr.Start(context.Background(), "scan", 0)
	_, s := StartSpan(ctx, "drive_media")
	s.End()
	root.End()
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(logged, "slow op") || !strings.Contains(logged, "drive_media") {
		t.Fatalf("slow-op log missing span tree: %q", logged)
	}
}

func TestTraceStoreEviction(t *testing.T) {
	store := NewTraceStore(2)
	tr := NewTracer(TracerConfig{Store: store})
	var ids []uint64
	for i := 0; i < 3; i++ {
		ctx, root := tr.Start(context.Background(), "op", 0)
		ids = append(ids, TraceID(ctx))
		root.End()
	}
	if store.Get(ids[0]) != nil {
		t.Fatal("oldest trace should be evicted from a 2-slot ring")
	}
	if store.Get(ids[1]) == nil || store.Get(ids[2]) == nil {
		t.Fatal("recent traces missing")
	}
}

func TestSpanCap(t *testing.T) {
	tr := NewTracer(TracerConfig{Store: NewTraceStore(4)})
	ctx, root := tr.Start(context.Background(), "scan", 0)
	for i := 0; i < maxSpansPerTrace+10; i++ {
		_, s := StartSpan(ctx, "page")
		s.End()
	}
	root.End()
	d := tr.store.Get(TraceID(ctx)).Dump()
	if len(d.Spans) != maxSpansPerTrace {
		t.Fatalf("span cap not enforced: %d", len(d.Spans))
	}
	if d.Dropped == 0 {
		t.Fatal("dropped spans not counted")
	}
}
