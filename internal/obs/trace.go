package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Wire headers carrying trace context between router, client and
// controller on the v1/v2 HTTP APIs. The drive link carries the trace
// id in the Kinetic message itself (wire.Message.TraceID).
const (
	// TraceHeader carries the 16-hex-digit trace id end to end.
	TraceHeader = "X-Pesos-Trace"
	// RouteHeader carries the router's per-attempt context
	// ("attempt=2;redirects=1;retargets=0"), recorded by the
	// controller as the trace's router span.
	RouteHeader = "X-Pesos-Route"
)

// idSeed randomizes process-local trace ids; the counter keeps them
// unique within the process.
var (
	idSeed    uint64
	idCounter atomic.Uint64
	idOnce    sync.Once
)

// NewTraceID returns a process-unique random-looking 64-bit trace id.
func NewTraceID() uint64 {
	idOnce.Do(func() {
		var b [8]byte
		if _, err := rand.Read(b[:]); err == nil {
			idSeed = binary.LittleEndian.Uint64(b[:])
		}
	})
	// splitmix64 of a seeded counter: unique, cheap, well mixed.
	z := idSeed + idCounter.Add(1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// FormatTraceID renders a trace id as its canonical 16-hex form.
func FormatTraceID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseTraceID parses the canonical hex form (0, false on garbage).
func ParseTraceID(s string) (uint64, bool) {
	if s == "" || len(s) > 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(s, 16, 64)
	return v, err == nil && v != 0
}

// Attr is one span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one recorded stage of a trace.
type Span struct {
	ID     uint64
	Parent uint64 // 0 for the root
	Name   string
	Start  time.Duration // offset from trace start
	Dur    time.Duration // 0 while open
	Attrs  []Attr
}

// maxSpansPerTrace bounds one trace's span slice; stages past the cap
// are counted as dropped rather than grown without bound (a scan over
// a huge keyspace must not hold the trace hostage).
const maxSpansPerTrace = 128

// Trace is one request's span tree, accumulated under a small mutex
// (spans are appended from replica fan-out goroutines concurrently).
type Trace struct {
	id   uint64
	wall time.Time
	base time.Time

	mu      sync.Mutex
	spans   []Span
	nextID  uint64
	dropped uint32
	dur     time.Duration
}

// ID returns the trace id.
func (t *Trace) ID() uint64 { return t.id }

// addSpan opens a span and returns its id (0 when the cap is hit).
func (t *Trace) addSpan(parent uint64, name string, start time.Duration) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpansPerTrace {
		t.dropped++
		return 0
	}
	t.nextID++
	id := t.nextID
	t.spans = append(t.spans, Span{ID: id, Parent: parent, Name: name, Start: start})
	return id
}

// finishSpan closes a span and attaches its attributes.
func (t *Trace) finishSpan(id uint64, dur time.Duration, attrs []Attr) {
	if id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.spans {
		if t.spans[i].ID == id {
			t.spans[i].Dur = dur
			if len(attrs) > 0 {
				t.spans[i].Attrs = append(t.spans[i].Attrs, attrs...)
			}
			return
		}
	}
}

// recordSpan appends an already-complete span (remote timings: the
// drive's reported media service time, the router's attempt).
func (t *Trace) recordSpan(parent uint64, name string, start, dur time.Duration, attrs []Attr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpansPerTrace {
		t.dropped++
		return
	}
	t.nextID++
	t.spans = append(t.spans, Span{
		ID: t.nextID, Parent: parent, Name: name, Start: start, Dur: dur, Attrs: attrs,
	})
}

// TracerConfig configures a Tracer.
type TracerConfig struct {
	// Store receives completed root traces (nil records nothing).
	Store *TraceStore
	// SlowThreshold dumps the span tree of ops at or over this
	// duration to SlowLog (0 disables).
	SlowThreshold time.Duration
	// SlowLog overrides the slow-op sink (default log.Printf).
	SlowLog func(format string, args ...any)
	// Sample head-samples self-initiated traces: 1-in-Sample requests
	// arriving without a caller id get a trace (0 or 1 = all of them).
	// Requests that carry an explicit id are always traced — an
	// operator chasing one request must never lose it to the sampler.
	Sample int
}

// Tracer creates traces. A nil *Tracer is the kill switch: every
// operation on it (and on the spans it did not create) is a no-op, so
// instrumented code never branches on the obs configuration.
type Tracer struct {
	store   *TraceStore
	slow    time.Duration
	slowLog func(format string, args ...any)
	sample  uint64
	tick    atomic.Uint64
}

// NewTracer builds a tracer.
func NewTracer(cfg TracerConfig) *Tracer {
	t := &Tracer{store: cfg.Store, slow: cfg.SlowThreshold, slowLog: cfg.SlowLog}
	if cfg.Sample > 1 {
		t.sample = uint64(cfg.Sample)
	}
	if t.slowLog == nil {
		t.slowLog = log.Printf
	}
	return t
}

// Sampled decides whether a request with no caller-provided trace id
// gets a trace this time. One atomic increment on the unsampled path.
func (t *Tracer) Sampled() bool {
	if t == nil {
		return false
	}
	if t.sample == 0 {
		return true
	}
	return t.tick.Add(1)%t.sample == 0
}

// spanCtx is the context payload of an active span.
type spanCtx struct {
	tracer *Tracer
	trace  *Trace
	span   uint64
}

type ctxKey int

const (
	spanCtxKey ctxKey = iota
	traceIDKey
	routeInfoKey
)

// ActiveSpan is an open span; End closes it. Nil-safe throughout.
type ActiveSpan struct {
	sc    spanCtx
	root  bool
	attrs []Attr
}

// Start opens a root span, beginning a new trace. id 0 generates one;
// a caller-provided id (from TraceHeader) is adopted, which is what
// stitches the router's attempts and the controller's work into one
// trace. Returns the input ctx unchanged when the tracer is nil.
func (t *Tracer) Start(ctx context.Context, name string, id uint64) (context.Context, *ActiveSpan) {
	if t == nil {
		return ctx, nil
	}
	if id == 0 {
		id = NewTraceID()
	}
	now := time.Now()
	// A healthy request produces a handful of spans (root, router,
	// policy, replicate, queue wait, drive); starting at that capacity
	// keeps the hot path at one spans allocation instead of a regrowth
	// per stage.
	tr := &Trace{id: id, wall: now, base: now, spans: make([]Span, 0, 8)}
	sid := tr.addSpan(0, name, 0)
	as := &ActiveSpan{sc: spanCtx{tracer: t, trace: tr, span: sid}, root: true}
	return context.WithValue(ctx, spanCtxKey, as.sc), as
}

// StartSpan opens a child span under the context's active trace; a
// no-op returning ctx unchanged when no trace is active.
func StartSpan(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	sc, ok := ctx.Value(spanCtxKey).(spanCtx)
	if !ok {
		return ctx, nil
	}
	sid := sc.trace.addSpan(sc.span, name, time.Since(sc.trace.base))
	child := sc
	child.span = sid
	return context.WithValue(ctx, spanCtxKey, child), &ActiveSpan{sc: child}
}

// Attr attaches an attribute, returned for chaining.
func (s *ActiveSpan) Attr(key, value string) *ActiveSpan {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	return s
}

// End closes the span. Ending the root span completes the trace:
// it lands in the store and, when over the slow threshold, its span
// tree goes to the slow-op log.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	tr := s.sc.trace
	dur := time.Since(tr.base.Add(spanStart(tr, s.sc.span)))
	tr.finishSpan(s.sc.span, dur, s.attrs)
	if !s.root {
		return
	}
	tr.mu.Lock()
	tr.dur = time.Since(tr.base)
	total := tr.dur
	tr.mu.Unlock()
	t := s.sc.tracer
	if t.store != nil {
		t.store.Add(tr)
	}
	if t.slow > 0 && total >= t.slow {
		t.slowLog("obs: slow op trace=%s dur=%s\n%s",
			FormatTraceID(tr.id), total.Round(time.Microsecond), FormatTree(tr.Dump()))
	}
}

// spanStart reads a span's start offset.
func spanStart(tr *Trace, id uint64) time.Duration {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for i := range tr.spans {
		if tr.spans[i].ID == id {
			return tr.spans[i].Start
		}
	}
	return 0
}

// RecordSpan attaches a completed timing to the context's active
// trace as a child of the current span; no-op without one.
func RecordSpan(ctx context.Context, name string, start time.Time, dur time.Duration, attrs ...Attr) {
	sc, ok := ctx.Value(spanCtxKey).(spanCtx)
	if !ok {
		return
	}
	sc.trace.recordSpan(sc.span, name, start.Sub(sc.trace.base), dur, attrs)
}

// TraceID returns the trace id visible in ctx: the active span's
// trace if one is open, else an id installed by WithTraceID, else 0.
// This is what the drive client stamps into wire messages and the
// HTTP client into TraceHeader.
func TraceID(ctx context.Context) uint64 {
	if sc, ok := ctx.Value(spanCtxKey).(spanCtx); ok {
		return sc.trace.id
	}
	if id, ok := ctx.Value(traceIDKey).(uint64); ok {
		return id
	}
	return 0
}

// WithTraceID installs a bare trace id for propagation from a process
// that records no spans itself (a client or router ahead of the
// controller's trace).
func WithTraceID(ctx context.Context, id uint64) context.Context {
	return context.WithValue(ctx, traceIDKey, id)
}

// RouteInfo is the router's per-attempt context, carried to the
// controller in RouteHeader so the server-side trace includes the
// client-side routing stage.
type RouteInfo struct {
	Attempt   int // 1-based dispatch attempt
	Redirects int // wrong-shard redirects so far
	Retargets int // transport/5xx retargets so far
}

// String renders the RouteHeader value.
func (ri RouteInfo) String() string {
	return fmt.Sprintf("attempt=%d;redirects=%d;retargets=%d", ri.Attempt, ri.Redirects, ri.Retargets)
}

// ParseRouteInfo parses a RouteHeader value.
func ParseRouteInfo(s string) (RouteInfo, bool) {
	var ri RouteInfo
	if s == "" {
		return ri, false
	}
	ok := false
	for _, part := range strings.Split(s, ";") {
		k, v, found := strings.Cut(part, "=")
		if !found {
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			continue
		}
		switch k {
		case "attempt":
			ri.Attempt, ok = n, true
		case "redirects":
			ri.Redirects = n
		case "retargets":
			ri.Retargets = n
		}
	}
	return ri, ok
}

// WithRouteInfo installs the router's attempt context for the HTTP
// client to forward (the router wraps the client, so the header hop
// goes through the context).
func WithRouteInfo(ctx context.Context, ri RouteInfo) context.Context {
	return context.WithValue(ctx, routeInfoKey, ri)
}

// RouteInfoFromContext reads the router attempt context.
func RouteInfoFromContext(ctx context.Context) (RouteInfo, bool) {
	ri, ok := ctx.Value(routeInfoKey).(RouteInfo)
	return ri, ok
}

// TraceStore is a fixed-size ring of completed traces, the backing of
// GET /v1/trace/{id}. Lookups scan backwards — the store is sized in
// the hundreds and queried by humans.
type TraceStore struct {
	mu   sync.Mutex
	ring []*Trace
	next int
}

// NewTraceStore creates a store holding the last n traces (n ≤ 0
// selects 1024).
func NewTraceStore(n int) *TraceStore {
	if n <= 0 {
		n = 1024
	}
	return &TraceStore{ring: make([]*Trace, n)}
}

// Add records a completed trace.
func (s *TraceStore) Add(t *Trace) {
	s.mu.Lock()
	s.ring[s.next] = t
	s.next = (s.next + 1) % len(s.ring)
	s.mu.Unlock()
}

// Get returns the most recent trace with the given id, nil if it has
// aged out.
func (s *TraceStore) Get(id uint64) *Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 1; i <= len(s.ring); i++ {
		t := s.ring[(s.next-i+len(s.ring))%len(s.ring)]
		if t != nil && t.id == id {
			return t
		}
	}
	return nil
}

// TraceDump is the JSON form of a completed trace.
type TraceDump struct {
	ID         string     `json:"id"`
	Start      time.Time  `json:"start"`
	DurationUs int64      `json:"durationUs"`
	Dropped    uint32     `json:"droppedSpans,omitempty"`
	Spans      []SpanDump `json:"spans"`
}

// SpanDump is the JSON form of one span.
type SpanDump struct {
	ID      uint64            `json:"id"`
	Parent  uint64            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	StartUs int64             `json:"startUs"`
	DurUs   int64             `json:"durUs"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Dump renders the trace for the API and the slow-op log.
func (t *Trace) Dump() *TraceDump {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := &TraceDump{
		ID: FormatTraceID(t.id), Start: t.wall,
		DurationUs: t.dur.Microseconds(), Dropped: t.dropped,
	}
	for _, sp := range t.spans {
		sd := SpanDump{
			ID: sp.ID, Parent: sp.Parent, Name: sp.Name,
			StartUs: sp.Start.Microseconds(), DurUs: sp.Dur.Microseconds(),
		}
		if len(sp.Attrs) > 0 {
			sd.Attrs = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				sd.Attrs[a.Key] = a.Value
			}
		}
		d.Spans = append(d.Spans, sd)
	}
	return d
}

// FormatTree renders a dump as an indented span tree for terminals
// and the slow-op log.
func FormatTree(d *TraceDump) string {
	children := make(map[uint64][]SpanDump)
	for _, sp := range d.Spans {
		children[sp.Parent] = append(children[sp.Parent], sp)
	}
	for _, c := range children {
		sort.Slice(c, func(i, j int) bool { return c[i].StartUs < c[j].StartUs })
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s  start=%s  total=%dus\n", d.ID, d.Start.Format(time.RFC3339Nano), d.DurationUs)
	var walk func(parent uint64, depth int)
	walk = func(parent uint64, depth int) {
		for _, sp := range children[parent] {
			fmt.Fprintf(&b, "%s%-24s +%-8d %8dus", strings.Repeat("  ", depth+1), sp.Name, sp.StartUs, sp.DurUs)
			if len(sp.Attrs) > 0 {
				keys := make([]string, 0, len(sp.Attrs))
				for k := range sp.Attrs {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					fmt.Fprintf(&b, "  %s=%s", k, sp.Attrs[k])
				}
			}
			b.WriteByte('\n')
			walk(sp.ID, depth+1)
		}
	}
	walk(0, 0)
	if d.Dropped > 0 {
		fmt.Fprintf(&b, "  (%d spans dropped)\n", d.Dropped)
	}
	return b.String()
}
