package obs

import (
	"bufio"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The sealed audit decision log (ROADMAP item 3): an append-only,
// AEAD-sealed, hash-chained record of policy decisions — every DENY,
// plus sampled ALLOWs — written outside the enclave but verifiable
// and readable only with the sealing key.
//
// On-disk layout (all integers big-endian):
//
//	<dir>/audit-<startseq>.seg   length-prefixed sealed entries
//	<dir>/HEAD                   hex "seq hash mac\n" sidecar
//
// Entry i (1-based seq) is sealed with AES-256-GCM:
//
//	blob_i = nonce(12) || GCM(key, nonce, json(record_i),
//	                          AD = "pesos-audit-v1" || chain_{i-1} || seq_i)
//	chain_i = SHA256(chain_{i-1} || blob_i),  chain_0 = SHA256("pesos-audit-v1")
//
// Binding the previous chain hash and the sequence number into the
// AEAD additional data means a single flipped byte anywhere breaks
// decryption of that entry and desynchronizes every later one;
// segments rotate by size but the chain runs across them. HEAD pins
// the tail: seq and chain hash authenticated by HMAC(key), so
// truncating trailing entries (or whole segments) is detected even
// though the chain itself would still verify on the shorter prefix.
const (
	auditDomain       = "pesos-audit-v1"
	auditHeadFile     = "HEAD"
	auditSegPrefix    = "audit-"
	auditSegSuffix    = ".seg"
	defaultSegBytes   = 1 << 20
	auditQueueDepth   = 1024
	auditMaxEntrySize = 1 << 20
	headDebounce      = 100 * time.Millisecond
)

// AuditRecord is one policy decision.
type AuditRecord struct {
	Seq      uint64    `json:"seq"`
	Time     time.Time `json:"time"`
	TraceID  string    `json:"trace,omitempty"`
	Client   string    `json:"client"`
	Op       string    `json:"op"`
	Key      string    `json:"key"`
	Decision string    `json:"decision"` // "deny" | "allow"
	Reason   string    `json:"reason,omitempty"`
	PolicyID string    `json:"policy,omitempty"`
}

// AuditConfig configures the log.
type AuditConfig struct {
	// Dir is the log directory (created if missing).
	Dir string
	// Key is the 32-byte sealing key. In a deployment it derives from
	// the attested secrets, so the key never exists outside the
	// enclave; operators verify with policyc and the exported key.
	Key [32]byte
	// MaxSegmentBytes rotates segments at this size (0 = 1 MB).
	MaxSegmentBytes int64
	// SampleAllow seals one in N ALLOW decisions (0 = denies only).
	SampleAllow int
	// Dropped counts records lost to a saturated queue (optional).
	Dropped *Counter
}

// AuditLog is the appender: callers enqueue records on the request
// path (one channel send); a single goroutine seals and writes.
// Segment writes are buffered and reach the file together with the
// HEAD pin, so a steady trickle of records costs two file updates per
// debounce window rather than two syscalls per record.
type AuditLog struct {
	cfg  AuditConfig
	aead cipher.AEAD

	queue chan AuditRecord
	stop  chan struct{}
	done  chan struct{}

	// allowTick samples ALLOWs without touching mu on the hot path.
	allowTick atomic.Uint64

	mu          sync.Mutex
	seq         uint64
	chain       [32]byte
	seg         *os.File
	segw        *bufio.Writer
	segSize     int64
	headDirty   bool
	syncWaiters []chan struct{}
}

// auditAEAD builds the sealing AEAD from a key.
func auditAEAD(key [32]byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// chainSeed is the genesis chain value.
func chainSeed() [32]byte { return sha256.Sum256([]byte(auditDomain)) }

// OpenAudit opens (or resumes) an audit log. Resume verifies the
// existing chain end against HEAD before appending — a tampered log
// refuses to grow, it does not get papered over.
func OpenAudit(cfg AuditConfig) (*AuditLog, error) {
	if cfg.Dir == "" {
		return nil, errors.New("obs: audit log needs a directory")
	}
	if cfg.MaxSegmentBytes <= 0 {
		cfg.MaxSegmentBytes = defaultSegBytes
	}
	if err := os.MkdirAll(cfg.Dir, 0o700); err != nil {
		return nil, err
	}
	aead, err := auditAEAD(cfg.Key)
	if err != nil {
		return nil, err
	}
	a := &AuditLog{
		cfg: cfg, aead: aead,
		queue: make(chan AuditRecord, auditQueueDepth),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		chain: chainSeed(),
	}
	// Resume: replay the chain over existing segments.
	st, err := verifyDir(cfg.Dir, cfg.Key, nil)
	if err != nil {
		return nil, fmt.Errorf("obs: audit log in %s fails verification, refusing to append: %w", cfg.Dir, err)
	}
	a.seq, a.chain = st.seq, st.chain
	go a.run()
	return a, nil
}

// Record enqueues one decision; ALLOWs are sampled per the config.
// Never blocks the request path: a full queue drops the record and
// counts it.
func (a *AuditLog) Record(rec AuditRecord) {
	if a == nil {
		return
	}
	if rec.Decision == "allow" {
		switch {
		case a.cfg.SampleAllow <= 0:
			return
		case a.cfg.SampleAllow > 1:
			if a.allowTick.Add(1)%uint64(a.cfg.SampleAllow) != 0 {
				return
			}
		}
	}
	if rec.Time.IsZero() {
		rec.Time = time.Now()
	}
	select {
	case a.queue <- rec:
	case <-a.stop:
	default:
		if a.cfg.Dropped != nil {
			a.cfg.Dropped.Inc()
		}
	}
}

// Sync blocks until every record enqueued before the call is sealed
// and written (tests and shutdown). Implemented as a marker record
// round trip: the waiter registers first, then enqueues the marker
// the writer acknowledges.
func (a *AuditLog) Sync() {
	if a == nil {
		return
	}
	ack := make(chan struct{})
	a.mu.Lock()
	a.syncWaiters = append(a.syncWaiters, ack)
	a.mu.Unlock()
	select {
	case a.queue <- AuditRecord{Decision: "__sync__"}:
		<-ack
	case <-a.stop:
	}
}

// Close flushes and closes the log.
func (a *AuditLog) Close() error {
	if a == nil {
		return nil
	}
	close(a.stop)
	<-a.done
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.seg != nil {
		err := a.seg.Close()
		a.seg = nil
		return err
	}
	return nil
}

// run is the appender goroutine. HEAD is pinned once per batch (plus
// on Sync and Close), not per record: after sealing a record the
// writer lingers briefly for more, so both a burst and a steady
// trickle share one sidecar write-and-rename, and HEAD lags the chain
// by at most the debounce window. Sync still acks only after a pin,
// so a quiesced log always verifies.
func (a *AuditLog) run() {
	defer close(a.done)
	for {
		select {
		case rec := <-a.queue:
			a.consume(rec)
			debounce := time.NewTimer(headDebounce)
		batch:
			for {
				select {
				case rec := <-a.queue:
					a.consume(rec)
				case <-debounce.C:
					break batch
				case <-a.stop:
					break batch
				}
			}
			debounce.Stop()
			a.flushHead()
		case <-a.stop:
			// Drain what is already queued, then exit.
			for {
				select {
				case rec := <-a.queue:
					a.consume(rec)
				default:
					a.flushHead()
					return
				}
			}
		}
	}
}

// consume handles one queued record or sync marker.
func (a *AuditLog) consume(rec AuditRecord) {
	if rec.Decision == "__sync__" {
		a.flushHead()
		a.mu.Lock()
		waiters := a.syncWaiters
		a.syncWaiters = nil
		a.mu.Unlock()
		for _, w := range waiters {
			close(w)
		}
		return
	}
	if err := a.append(rec); err != nil {
		// The log is advisory on the write path; the failure counter
		// is the operator's signal.
		if a.cfg.Dropped != nil {
			a.cfg.Dropped.Inc()
		}
	}
}

// append seals one record onto the chain.
func (a *AuditLog) append(rec AuditRecord) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	rec.Seq = a.seq + 1
	plain, err := json.Marshal(&rec)
	if err != nil {
		return err
	}
	var nonce [12]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return err
	}
	ad := additionalData(a.chain, rec.Seq)
	blob := make([]byte, 0, len(nonce)+len(plain)+a.aead.Overhead())
	blob = append(blob, nonce[:]...)
	blob = a.aead.Seal(blob, nonce[:], plain, ad)

	if err := a.ensureSegment(rec.Seq, int64(4+len(blob))); err != nil {
		return err
	}
	var lenbuf [4]byte
	binary.BigEndian.PutUint32(lenbuf[:], uint32(len(blob)))
	if _, err := a.segw.Write(lenbuf[:]); err != nil {
		return err
	}
	if _, err := a.segw.Write(blob); err != nil {
		return err
	}
	a.segSize += int64(4 + len(blob))
	a.seq = rec.Seq
	a.chain = nextChain(a.chain, blob)
	a.headDirty = true
	return nil
}

// flushHead lands the batch: buffered segment writes first, then the
// HEAD pin over them — never a pin for bytes that have not reached the
// segment file. A failure is surfaced on the dropped counter and the
// pin retried on the next flush (headDirty stays set).
func (a *AuditLog) flushHead() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.headDirty {
		return
	}
	if a.segw != nil {
		if err := a.segw.Flush(); err != nil {
			if a.cfg.Dropped != nil {
				a.cfg.Dropped.Inc()
			}
			return
		}
	}
	if err := a.writeHead(); err != nil {
		if a.cfg.Dropped != nil {
			a.cfg.Dropped.Inc()
		}
		return
	}
	a.headDirty = false
}

// ensureSegment opens the active segment, rotating by size.
func (a *AuditLog) ensureSegment(seq uint64, need int64) error {
	if a.seg != nil && a.segSize+need > a.cfg.MaxSegmentBytes && a.segSize > 0 {
		a.segw.Flush()
		a.seg.Close()
		a.seg, a.segw = nil, nil
	}
	if a.seg == nil {
		name := filepath.Join(a.cfg.Dir, fmt.Sprintf("%s%016d%s", auditSegPrefix, seq, auditSegSuffix))
		f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
		if err != nil {
			return err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return err
		}
		a.seg, a.segw, a.segSize = f, bufio.NewWriterSize(f, 32<<10), st.Size()
	}
	return nil
}

// writeHead pins the chain tail: seq, chain hash, HMAC over both.
func (a *AuditLog) writeHead() error {
	mac := headMAC(a.cfg.Key, a.seq, a.chain)
	line := fmt.Sprintf("%d %s %s\n", a.seq, hex.EncodeToString(a.chain[:]), hex.EncodeToString(mac))
	tmp := filepath.Join(a.cfg.Dir, auditHeadFile+".tmp")
	if err := os.WriteFile(tmp, []byte(line), 0o600); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(a.cfg.Dir, auditHeadFile))
}

func additionalData(chain [32]byte, seq uint64) []byte {
	ad := make([]byte, 0, len(auditDomain)+32+8)
	ad = append(ad, auditDomain...)
	ad = append(ad, chain[:]...)
	ad = binary.BigEndian.AppendUint64(ad, seq)
	return ad
}

func nextChain(chain [32]byte, blob []byte) [32]byte {
	h := sha256.New()
	h.Write(chain[:])
	h.Write(blob)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

func headMAC(key [32]byte, seq uint64, chain [32]byte) []byte {
	mac := hmac.New(sha256.New, key[:])
	mac.Write([]byte("head"))
	mac.Write(binary.BigEndian.AppendUint64(nil, seq))
	mac.Write(chain[:])
	return mac.Sum(nil)
}

// chainState is the verifier's cursor.
type chainState struct {
	seq   uint64
	chain [32]byte
}

// auditSegments lists a directory's segment files in sequence order.
func auditSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []string
	for _, e := range entries {
		n := e.Name()
		if strings.HasPrefix(n, auditSegPrefix) && strings.HasSuffix(n, auditSegSuffix) {
			segs = append(segs, filepath.Join(dir, n))
		}
	}
	sort.Strings(segs)
	return segs, nil
}

// verifyDir replays the whole chain, optionally delivering each
// decrypted record to visit, and checks the end against HEAD.
func verifyDir(dir string, key [32]byte, visit func(AuditRecord)) (chainState, error) {
	st := chainState{chain: chainSeed()}
	aead, err := auditAEAD(key)
	if err != nil {
		return st, err
	}
	segs, err := auditSegments(dir)
	if err != nil {
		return st, err
	}
	for _, seg := range segs {
		if err := verifySegment(seg, aead, &st, visit); err != nil {
			return st, fmt.Errorf("%s: %w", filepath.Base(seg), err)
		}
	}
	// HEAD check: absent is acceptable only for an empty log.
	headPath := filepath.Join(dir, auditHeadFile)
	data, err := os.ReadFile(headPath)
	if err != nil {
		if os.IsNotExist(err) && st.seq == 0 {
			return st, nil
		}
		return st, fmt.Errorf("HEAD: %w", err)
	}
	var seq uint64
	var chainHex, macHex string
	if _, err := fmt.Sscanf(strings.TrimSpace(string(data)), "%d %s %s", &seq, &chainHex, &macHex); err != nil {
		return st, fmt.Errorf("HEAD: malformed: %w", err)
	}
	chainBytes, err1 := hex.DecodeString(chainHex)
	macBytes, err2 := hex.DecodeString(macHex)
	if err1 != nil || err2 != nil || len(chainBytes) != 32 {
		return st, errors.New("HEAD: malformed hex")
	}
	var headChain [32]byte
	copy(headChain[:], chainBytes)
	if !hmac.Equal(macBytes, headMAC(key, seq, headChain)) {
		return st, errors.New("HEAD: bad authentication code (forged or wrong key)")
	}
	if seq != st.seq || headChain != st.chain {
		return st, fmt.Errorf("log ends at seq %d but HEAD pins seq %d (entries truncated or replaced)", st.seq, seq)
	}
	return st, nil
}

// verifySegment replays one segment onto the chain cursor.
func verifySegment(path string, aead cipher.AEAD, st *chainState, visit func(AuditRecord)) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var lenbuf [4]byte
	for {
		_, err := io.ReadFull(f, lenbuf[:])
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("entry %d: truncated length: %w", st.seq+1, err)
		}
		n := binary.BigEndian.Uint32(lenbuf[:])
		if n < 12 || n > auditMaxEntrySize {
			return fmt.Errorf("entry %d: implausible length %d", st.seq+1, n)
		}
		blob := make([]byte, n)
		if _, err := io.ReadFull(f, blob); err != nil {
			return fmt.Errorf("entry %d: truncated body: %w", st.seq+1, err)
		}
		seq := st.seq + 1
		plain, err := aead.Open(nil, blob[:12], blob[12:], additionalData(st.chain, seq))
		if err != nil {
			return fmt.Errorf("entry %d: seal broken (tampered or wrong key)", seq)
		}
		if visit != nil {
			var rec AuditRecord
			if err := json.Unmarshal(plain, &rec); err != nil {
				return fmt.Errorf("entry %d: bad record: %w", seq, err)
			}
			visit(rec)
		}
		st.seq = seq
		st.chain = nextChain(st.chain, blob)
	}
}

// VerifyAudit verifies a log directory end to end: every entry's
// seal, the hash chain, and the HEAD pin. Returns the entry count.
func VerifyAudit(dir string, key [32]byte) (uint64, error) {
	st, err := verifyDir(dir, key, nil)
	return st.seq, err
}

// ReadAudit decrypts and returns the last n records (n <= 0 returns
// all), verifying the full chain on the way.
func ReadAudit(dir string, key [32]byte, n int) ([]AuditRecord, error) {
	var recs []AuditRecord
	_, err := verifyDir(dir, key, func(r AuditRecord) { recs = append(recs, r) })
	if err != nil {
		return nil, err
	}
	if n > 0 && len(recs) > n {
		recs = recs[len(recs)-n:]
	}
	return recs, nil
}

// DeriveAuditKey derives the sealing key from a deployment secret, so
// the key material never exists on disk next to the log.
func DeriveAuditKey(secret []byte) [32]byte {
	mac := hmac.New(sha256.New, secret)
	mac.Write([]byte("pesos-audit-log-key-v1"))
	var k [32]byte
	copy(k[:], mac.Sum(nil))
	return k
}
