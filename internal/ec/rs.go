// Package ec implements systematic Reed-Solomon erasure coding over
// GF(2^8) for the controller's erasure-coded storage class: k data
// shards plus m parity shards, any k of which reconstruct the
// original data. The arithmetic runs on cached tables (a 64 KB full
// multiplication table computed once at package init), so the
// per-byte encode cost is one table lookup and one XOR per parity
// shard — no field arithmetic on the hot path.
//
// The code is systematic: the encoding matrix is a (k+m)×k Vandermonde
// matrix normalized so its top k×k block is the identity, which keeps
// data shards stored verbatim (reads of healthy stripes never touch
// the decoder) while preserving the Vandermonde property that every
// k×k submatrix is invertible — the guarantee that any k surviving
// shards suffice.
package ec

import (
	"errors"
	"fmt"
)

// Errors.
var (
	ErrShort    = errors.New("ec: fewer than k shards survive; data unrecoverable")
	ErrShards   = errors.New("ec: invalid shard set")
	ErrParams   = errors.New("ec: invalid coding parameters")
	errSingular = errors.New("ec: singular submatrix") // impossible for Vandermonde; internal guard
)

// Field size and the primitive polynomial x^8+x^4+x^3+x^2+1 (0x11d),
// the conventional generator for storage RS codes.
const fieldSize = 256

var (
	gfExp [2 * fieldSize]byte // anti-log table, doubled to skip a mod
	gfLog [fieldSize]byte
	// gfMulTable caches every product: gfMulTable[a][b] = a·b in
	// GF(2^8). 64 KB once, then encode/decode inner loops are pure
	// lookups.
	gfMulTable [fieldSize][fieldSize]byte
)

func init() {
	x := byte(1)
	for i := 0; i < fieldSize-1; i++ {
		gfExp[i] = x
		gfLog[x] = byte(i)
		// multiply by the generator (2) modulo the primitive polynomial
		if x&0x80 != 0 {
			x = (x << 1) ^ 0x1d
		} else {
			x <<= 1
		}
	}
	for i := fieldSize - 1; i < len(gfExp); i++ {
		gfExp[i] = gfExp[i-(fieldSize-1)]
	}
	for a := 1; a < fieldSize; a++ {
		la := int(gfLog[a])
		for b := 1; b < fieldSize; b++ {
			gfMulTable[a][b] = gfExp[la+int(gfLog[b])]
		}
	}
}

func gfMul(a, b byte) byte { return gfMulTable[a][b] }

func gfInv(a byte) byte {
	if a == 0 {
		panic("ec: inverse of zero")
	}
	return gfExp[(fieldSize-1)-int(gfLog[a])]
}

// mulSliceXor folds coef·in into out: out[i] ^= coef·in[i]. in may be
// shorter than out (the tail contributes zeros — short final chunks of
// a stripe are implicitly zero-padded).
func mulSliceXor(coef byte, in, out []byte) {
	if coef == 0 {
		return
	}
	if coef == 1 {
		for i := range in {
			out[i] ^= in[i]
		}
		return
	}
	mt := &gfMulTable[coef]
	for i, v := range in {
		out[i] ^= mt[v]
	}
}

// Code is one (k, m) Reed-Solomon code: k data shards, m parity
// shards. Immutable after New; safe for concurrent use.
type Code struct {
	k, m int
	// parity is the bottom m×k block of the systematic encoding
	// matrix: parity shard j = Σ_i parity[j][i] · data shard i.
	parity [][]byte
}

// MaxShards bounds k+m: the Vandermonde construction needs distinct
// field elements per row.
const MaxShards = fieldSize - 1

// New builds the (k, m) code. k ≥ 1, m ≥ 1, k+m ≤ MaxShards.
func New(k, m int) (*Code, error) {
	if k < 1 || m < 1 || k+m > MaxShards {
		return nil, fmt.Errorf("%w: k=%d m=%d", ErrParams, k, m)
	}
	// Vandermonde rows: row i = [i^0, i^1, ... i^(k-1)] over GF(2^8).
	vm := make([][]byte, k+m)
	for i := range vm {
		vm[i] = make([]byte, k)
		e := byte(1)
		for j := 0; j < k; j++ {
			vm[i][j] = e
			e = gfMul(e, byte(i)) // row 0 degenerates to [1,0,...]: 0^0 = 1
		}
	}
	// Normalize: multiply by the inverse of the top k×k block so the
	// top becomes the identity (systematic form). Row operations
	// preserve the any-k-rows-invertible property.
	top := make([][]byte, k)
	for i := range top {
		top[i] = append([]byte(nil), vm[i][:k]...)
	}
	inv, err := invertMatrix(top)
	if err != nil {
		return nil, err // unreachable: Vandermonde top block is invertible
	}
	sys := matMul(vm, inv)
	return &Code{k: k, m: m, parity: sys[k:]}, nil
}

// DataShards returns k.
func (c *Code) DataShards() int { return c.k }

// ParityShards returns m.
func (c *Code) ParityShards() int { return c.m }

// EncodeAdd folds one data shard into the m parity accumulators:
// parity[j] ^= coef(j, dataIdx)·data. Calling it once per data shard
// (any order) with parity buffers starting zeroed is equivalent to
// Encode; data may be shorter than the parity buffers (zero-padded
// semantics), which is how the final short chunk of a stripe encodes
// without materializing its padding.
func (c *Code) EncodeAdd(parity [][]byte, dataIdx int, data []byte) {
	for j := 0; j < c.m; j++ {
		mulSliceXor(c.parity[j][dataIdx], data, parity[j])
	}
}

// Encode computes all m parity shards from the k data shards. parity
// buffers must be zeroed and at least as long as the longest data
// shard.
func (c *Code) Encode(data, parity [][]byte) error {
	if len(data) != c.k || len(parity) != c.m {
		return fmt.Errorf("%w: want %d data + %d parity shards, have %d + %d",
			ErrShards, c.k, c.m, len(data), len(parity))
	}
	for i, d := range data {
		c.EncodeAdd(parity, i, d)
	}
	return nil
}

// Reconstruct fills every nil shard in place. shards has length k+m:
// indices < k are data shards, the rest parity. All non-nil shards
// must have equal length (callers zero-pad short final chunks); at
// least k must be non-nil or ErrShort reports the stripe lost.
func (c *Code) Reconstruct(shards [][]byte) error {
	return c.reconstruct(shards, true)
}

// ReconstructData fills only the nil data shards, leaving missing
// parity nil — the read path wants the data back and has no use for
// re-derived parity.
func (c *Code) ReconstructData(shards [][]byte) error {
	return c.reconstruct(shards, false)
}

func (c *Code) reconstruct(shards [][]byte, withParity bool) error {
	if len(shards) != c.k+c.m {
		return fmt.Errorf("%w: want %d shards, have %d", ErrShards, c.k+c.m, len(shards))
	}
	present := make([]int, 0, c.k)
	shardLen := -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		if shardLen < 0 {
			shardLen = len(s)
		} else if len(s) != shardLen {
			return fmt.Errorf("%w: shard %d is %d bytes, want %d", ErrShards, i, len(s), shardLen)
		}
		if len(present) < c.k {
			present = append(present, i)
		}
	}
	if len(present) < c.k {
		return fmt.Errorf("%w: %d of %d shards present, need %d", ErrShort, len(present), c.k+c.m, c.k)
	}
	anyMissingData := false
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			anyMissingData = true
		}
	}
	if anyMissingData {
		// Solve for the data shards: the k present shards are k known
		// linear combinations of them (row = identity row for a data
		// shard, parity row for a parity shard). Invert that k×k system
		// and apply the rows of the inverse that correspond to missing
		// data shards.
		sub := make([][]byte, c.k)
		for r, idx := range present {
			if idx < c.k {
				row := make([]byte, c.k)
				row[idx] = 1
				sub[r] = row
			} else {
				sub[r] = append([]byte(nil), c.parity[idx-c.k]...)
			}
		}
		dec, err := invertMatrix(sub)
		if err != nil {
			return err
		}
		for i := 0; i < c.k; i++ {
			if shards[i] != nil {
				continue
			}
			out := make([]byte, shardLen)
			for r, idx := range present {
				mulSliceXor(dec[i][r], shards[idx], out)
			}
			shards[i] = out
		}
	}
	if !withParity {
		return nil
	}
	// Re-derive any missing parity from the (now complete) data.
	for j := 0; j < c.m; j++ {
		if shards[c.k+j] != nil {
			continue
		}
		out := make([]byte, shardLen)
		for i := 0; i < c.k; i++ {
			mulSliceXor(c.parity[j][i], shards[i], out)
		}
		shards[c.k+j] = out
	}
	return nil
}

// matMul returns a×b for dense GF(2^8) matrices.
func matMul(a, b [][]byte) [][]byte {
	rows, inner, cols := len(a), len(b), len(b[0])
	out := make([][]byte, rows)
	for i := range out {
		out[i] = make([]byte, cols)
		for j := 0; j < cols; j++ {
			var acc byte
			for t := 0; t < inner; t++ {
				acc ^= gfMul(a[i][t], b[t][j])
			}
			out[i][j] = acc
		}
	}
	return out
}

// invertMatrix returns the inverse of a square GF(2^8) matrix by
// Gauss-Jordan elimination. The input is consumed as scratch.
func invertMatrix(m [][]byte) ([][]byte, error) {
	n := len(m)
	inv := make([][]byte, n)
	for i := range inv {
		inv[i] = make([]byte, n)
		inv[i][i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if m[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, errSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		if p := m[col][col]; p != 1 {
			pi := gfInv(p)
			for j := 0; j < n; j++ {
				m[col][j] = gfMul(m[col][j], pi)
				inv[col][j] = gfMul(inv[col][j], pi)
			}
		}
		for r := 0; r < n; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			f := m[r][col]
			for j := 0; j < n; j++ {
				m[r][j] ^= gfMul(f, m[col][j])
				inv[r][j] ^= gfMul(f, inv[col][j])
			}
		}
	}
	return inv, nil
}
