package ec

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// TestRoundTrip fuzzes encode/decode identity across random (k, m,
// size): for every combination, dropping any m shards still
// reconstructs the original data exactly.
func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		k := 1 + rng.Intn(8)
		m := 1 + rng.Intn(4)
		size := 1 + rng.Intn(4096)
		c, err := New(k, m)
		if err != nil {
			t.Fatalf("New(%d,%d): %v", k, m, err)
		}
		data := make([][]byte, k)
		for i := range data {
			data[i] = make([]byte, size)
			rng.Read(data[i])
		}
		parity := make([][]byte, m)
		for j := range parity {
			parity[j] = make([]byte, size)
		}
		if err := c.Encode(data, parity); err != nil {
			t.Fatalf("Encode: %v", err)
		}

		// Drop a random set of exactly m shards.
		shards := make([][]byte, k+m)
		for i := range data {
			shards[i] = append([]byte(nil), data[i]...)
		}
		for j := range parity {
			shards[k+j] = append([]byte(nil), parity[j]...)
		}
		for _, di := range rng.Perm(k + m)[:m] {
			shards[di] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("Reconstruct k=%d m=%d: %v", k, m, err)
		}
		for i := range data {
			if !bytes.Equal(shards[i], data[i]) {
				t.Fatalf("k=%d m=%d size=%d: data shard %d differs after reconstruction", k, m, size, i)
			}
		}
		for j := range parity {
			if !bytes.Equal(shards[k+j], parity[j]) {
				t.Fatalf("k=%d m=%d size=%d: parity shard %d differs after reconstruction", k, m, size, j)
			}
		}
	}
}

// TestEncodeAddIncremental checks the streaming accumulation path:
// folding shards one at a time (with a short final shard) matches
// Encode over zero-padded input.
func TestEncodeAddIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	const size = 1024
	data := make([][]byte, 4)
	for i := range data {
		data[i] = make([]byte, size)
		rng.Read(data[i])
	}
	// Shorten the last shard; zero-pad the reference copy.
	short := append([]byte(nil), data[3][:100]...)
	padded := make([]byte, size)
	copy(padded, short)
	data[3] = padded

	want := [][]byte{make([]byte, size), make([]byte, size)}
	if err := c.Encode(data, want); err != nil {
		t.Fatal(err)
	}

	got := [][]byte{make([]byte, size), make([]byte, size)}
	for i := 0; i < 3; i++ {
		c.EncodeAdd(got, i, data[i])
	}
	c.EncodeAdd(got, 3, short) // unpadded: EncodeAdd's implicit zero-fill
	for j := range want {
		if !bytes.Equal(got[j], want[j]) {
			t.Fatalf("incremental parity %d differs from batch encode", j)
		}
	}
}

// TestTooManyLost verifies the decoder fails loudly — ErrShort, not
// silently wrong bytes — once m+1 shards are gone.
func TestTooManyLost(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, km := range [][2]int{{4, 2}, {2, 1}, {6, 3}} {
		k, m := km[0], km[1]
		c, err := New(k, m)
		if err != nil {
			t.Fatal(err)
		}
		shards := make([][]byte, k+m)
		for i := range shards {
			shards[i] = make([]byte, 64)
			rng.Read(shards[i])
		}
		for _, di := range rng.Perm(k + m)[:m+1] {
			shards[di] = nil
		}
		if err := c.Reconstruct(shards); !errors.Is(err, ErrShort) {
			t.Fatalf("k=%d m=%d with %d lost: got %v, want ErrShort", k, m, m+1, err)
		}
	}
}

// TestParams rejects degenerate codes.
func TestParams(t *testing.T) {
	for _, bad := range [][2]int{{0, 1}, {1, 0}, {-1, 2}, {200, 100}} {
		if _, err := New(bad[0], bad[1]); !errors.Is(err, ErrParams) {
			t.Fatalf("New(%d,%d): got %v, want ErrParams", bad[0], bad[1], err)
		}
	}
	if _, err := New(4, 2); err != nil {
		t.Fatalf("New(4,2): %v", err)
	}
}

// TestMismatchedShardLengths rejects ragged shard sets instead of
// reading out of bounds.
func TestMismatchedShardLengths(t *testing.T) {
	c, err := New(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	shards := [][]byte{make([]byte, 8), make([]byte, 9), nil}
	if err := c.Reconstruct(shards); !errors.Is(err, ErrShards) {
		t.Fatalf("got %v, want ErrShards", err)
	}
}

func BenchmarkEncode4x2(b *testing.B) {
	c, _ := New(4, 2)
	const size = 1 << 20
	data := make([][]byte, 4)
	for i := range data {
		data[i] = make([]byte, size)
		rand.New(rand.NewSource(int64(i))).Read(data[i])
	}
	parity := [][]byte{make([]byte, size), make([]byte, size)}
	b.SetBytes(4 * size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range parity {
			for x := range parity[j] {
				parity[j][x] = 0
			}
		}
		c.Encode(data, parity)
	}
}
