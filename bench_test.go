// Package repro's root benchmarks regenerate every figure of the
// Pesos evaluation (§6) as testing.B benchmarks, one per figure, at a
// micro scale that completes in seconds. Use cmd/pesos-bench for
// quick- and paper-scale runs with full sweeps; these benchmarks
// exist so `go test -bench=.` exercises every experiment end to end
// and reports its headline metric.
package repro

import (
	"io"
	"testing"

	"repro/internal/bench"
	"repro/internal/kinetic/wire"
)

// microScale shrinks every sweep so a full figure fits in a benchmark
// iteration.
func microScale() bench.Scale {
	return bench.Scale{
		RecordCount:        600,
		OpCount:            2400,
		ClientSteps:        []int{4, 16},
		DiskOpCount:        250,
		DiskRecordCount:    120,
		DiskClientSteps:    []int{4, 16},
		GroupCommitClients: []int{1, 8, 32},
		PolicyCacheEntries: 150,
		PolicySteps:        []int{1, 150, 600},
		MALGranularities:   []int{1, 10, 100},
		PayloadSizes:       []int{128, 1024, 16384},
		ReplicationDisks:   []int{1, 2, 4},
		Clients:            16,
	}
}

// reportPeak reports the maximum value of a column as a benchmark
// metric.
func reportPeak(b *testing.B, t *bench.Table, column, metric string) {
	b.Helper()
	idx := t.Col(column)
	if idx < 0 {
		b.Fatalf("column %q missing in %s", column, t.Name)
	}
	peak := 0.0
	for _, r := range t.Rows {
		if r.Values[idx] > peak {
			peak = r.Values[idx]
		}
	}
	b.ReportMetric(peak, metric)
}

// BenchmarkFig3Throughput regenerates Figure 3 (throughput vs
// clients, four configurations).
func BenchmarkFig3Throughput(b *testing.B) {
	s := microScale()
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig3Throughput(s)
		if err != nil {
			b.Fatal(err)
		}
		reportPeak(b, t, "Pesos Sim kIOP/s", "pesos-sim-kIOPS")
		reportPeak(b, t, "Native Sim kIOP/s", "native-sim-kIOPS")
		reportPeak(b, t, "Pesos Disk IOP/s", "pesos-disk-IOPS")
	}
}

// BenchmarkFig4Latency regenerates Figure 4 (latency vs clients).
func BenchmarkFig4Latency(b *testing.B) {
	s := microScale()
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig4Latency(s)
		if err != nil {
			b.Fatal(err)
		}
		// Report the single-digit-client latency (the flat region).
		idx := t.Col("Pesos Sim ms")
		b.ReportMetric(t.Rows[0].Values[idx], "pesos-sim-ms")
	}
}

// BenchmarkFig5DiskScaling regenerates Figure 5 (scaling with
// controller+disk pairs).
func BenchmarkFig5DiskScaling(b *testing.B) {
	s := microScale()
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig5DiskScaling(s)
		if err != nil {
			b.Fatal(err)
		}
		reportPeak(b, t, "Pesos Sim kIOP/s", "pesos-sim-3disk-kIOPS")
	}
}

// BenchmarkFig6PayloadSize regenerates Figure 6 (value size sweep).
func BenchmarkFig6PayloadSize(b *testing.B) {
	s := microScale()
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig6PayloadSize(s)
		if err != nil {
			b.Fatal(err)
		}
		reportPeak(b, t, "Pesos Sim kIOP/s", "pesos-sim-kIOPS")
	}
}

// BenchmarkEncryptionOverhead regenerates the §6.2 encryption
// experiment.
func BenchmarkEncryptionOverhead(b *testing.B) {
	s := microScale()
	for i := 0; i < b.N; i++ {
		t, err := bench.EncryptionOverhead(s)
		if err != nil {
			b.Fatal(err)
		}
		idx := t.Col("Overhead %")
		b.ReportMetric(t.Rows[len(t.Rows)-1].Values[idx], "enc-overhead-pct")
	}
}

// BenchmarkFig7Replication regenerates Figure 7 (replication factor).
func BenchmarkFig7Replication(b *testing.B) {
	s := microScale()
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig7Replication(s)
		if err != nil {
			b.Fatal(err)
		}
		reportPeak(b, t, "Pesos Sim kIOP/s", "pesos-sim-r1-kIOPS")
	}
}

// BenchmarkFig8PolicyCache regenerates Figure 8 (policy cache
// effectiveness).
func BenchmarkFig8PolicyCache(b *testing.B) {
	s := microScale()
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig8PolicyCache(s)
		if err != nil {
			b.Fatal(err)
		}
		idx := t.Col("Pesos Sim kIOP/s")
		first := t.Rows[0].Values[idx]
		last := t.Rows[len(t.Rows)-1].Values[idx]
		b.ReportMetric(first, "cached-kIOPS")
		b.ReportMetric(last, "overflow-kIOPS")
	}
}

// BenchmarkFig9Versioned regenerates Figure 9 (versioned store).
func BenchmarkFig9Versioned(b *testing.B) {
	s := microScale()
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig9Versioned(s)
		if err != nil {
			b.Fatal(err)
		}
		reportPeak(b, t, "Pesos Policy kIOP/s", "pesos-policy-kIOPS")
		idx := t.Col("Overhead %")
		b.ReportMetric(t.Rows[len(t.Rows)-1].Values[idx], "overhead-pct")
	}
}

// BenchmarkFig10MAL regenerates Figure 10 (mandatory access logging
// granularity).
func BenchmarkFig10MAL(b *testing.B) {
	s := microScale()
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig10MAL(s)
		if err != nil {
			b.Fatal(err)
		}
		idx := t.Col("Pesos Sim kIOP/s")
		b.ReportMetric(t.Rows[0].Values[idx], "G1-kIOPS")
		b.ReportMetric(t.Rows[len(t.Rows)-1].Values[idx], "G100-kIOPS")
	}
}

// BenchmarkAblation measures the cost of each security layer against
// the full configuration (the design-choice ablation of DESIGN.md).
func BenchmarkAblation(b *testing.B) {
	s := microScale()
	for i := 0; i < b.N; i++ {
		t, err := bench.Ablation(s)
		if err != nil {
			b.Fatal(err)
		}
		idx := t.Col("kIOP/s")
		b.ReportMetric(t.Rows[0].Values[idx], "full-kIOPS")
		b.ReportMetric(t.Rows[len(t.Rows)-1].Values[idx], "native-kIOPS")
	}
}

// BenchmarkFigBatchReplication regenerates the replication-engine
// comparison (serial-singleton vs atomic batched-parallel writes).
func BenchmarkFigBatchReplication(b *testing.B) {
	s := microScale()
	for i := 0; i < b.N; i++ {
		t, err := bench.FigBatchReplication(s)
		if err != nil {
			b.Fatal(err)
		}
		reportPeak(b, t, "Batched IOP/s", "batched-IOPS")
		reportPeak(b, t, "Serial IOP/s", "serial-IOPS")
		reportPeak(b, t, "Speedup x", "speedup")
	}
}

// BenchmarkFigScanWorkloadE regenerates the scan figure (YCSB
// workload E short ranges over the v2 Scan API).
func BenchmarkFigScanWorkloadE(b *testing.B) {
	s := microScale()
	for i := 0; i < b.N; i++ {
		t, err := bench.FigScanWorkloadE(s)
		if err != nil {
			b.Fatal(err)
		}
		reportPeak(b, t, "Pesos Sim kIOP/s", "pesos-scan-kIOPS")
	}
}

// BenchmarkFigClusterScaling regenerates the cluster scale-out figure
// (YCSB A/B/E through the cluster router at 1/2/4 controllers).
func BenchmarkFigClusterScaling(b *testing.B) {
	s := microScale()
	for i := 0; i < b.N; i++ {
		t, err := bench.FigClusterScaling(s)
		if err != nil {
			b.Fatal(err)
		}
		idx := t.Col("YCSB-A IOP/s")
		b.ReportMetric(t.Rows[0].Values[idx], "1ctrl-A-IOPS")
		b.ReportMetric(t.Rows[len(t.Rows)-1].Values[idx], "4ctrl-A-IOPS")
		reportPeak(b, t, "Redirects", "redirects")
	}
}

// BenchmarkFigGroupCommit regenerates the write-engine comparison
// (serial vs per-op atomic batches vs cross-client group commit on
// YCSB-A over the HDD model) and emits BENCH_write.json, which the CI
// bench-smoke job uploads as an artifact.
func BenchmarkFigGroupCommit(b *testing.B) {
	s := microScale()
	for i := 0; i < b.N; i++ {
		t, err := bench.FigGroupCommit(s)
		if err != nil {
			b.Fatal(err)
		}
		reportPeak(b, t, "Group IOP/s", "group-IOPS")
		reportPeak(b, t, "PerOp IOP/s", "perop-IOPS")
		reportPeak(b, t, "Group/PerOp x", "speedup")
		if err := bench.WriteBenchWriteJSON("BENCH_write.json", t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigPolicy regenerates the policy fast-path comparison
// (interpreter vs rule indexing vs session-bind partial evaluation,
// per-op evaluator cost plus policy-filtered YCSB-E scans) and emits
// BENCH_policy.json, which the CI bench-smoke job uploads as an
// artifact.
func BenchmarkFigPolicy(b *testing.B) {
	s := microScale()
	for i := 0; i < b.N; i++ {
		t, err := bench.FigPolicy(s)
		if err != nil {
			b.Fatal(err)
		}
		reportPeak(b, t, "Scan kIOP/s", "scan-kIOPS")
		reportPeak(b, t, "Residual hits", "residual-hits")
		if err := bench.WriteBenchPolicyJSON("BENCH_policy.json", t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigFailover regenerates the controller-failover figure
// (kill the active under load, hot standby takes over behind a lease)
// and emits BENCH_ha.json with the recovery timeline, which the CI
// bench-smoke job uploads as an artifact.
func BenchmarkFigFailover(b *testing.B) {
	s := microScale()
	for i := 0; i < b.N; i++ {
		t, err := bench.FigFailover(s)
		if err != nil {
			b.Fatal(err)
		}
		idx := t.Col("p99 ms")
		for _, r := range t.Rows {
			switch r.X {
			case "healthy":
				b.ReportMetric(r.Values[idx], "healthy-p99-ms")
			case "outage":
				b.ReportMetric(r.Values[idx], "outage-p99-ms")
			}
		}
		if err := bench.WriteBenchHAJSON("BENCH_ha.json", t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigChaos regenerates the chaos figure: phased drive-fault
// injection (baseline, drive kill, partition+reconcile, load ramp)
// under a closed-loop load, with the failure detector and background
// sweeper restoring replication. Emits BENCH_chaos.json.
func BenchmarkFigChaos(b *testing.B) {
	s := microScale()
	for i := 0; i < b.N; i++ {
		t, err := bench.FigChaos(s)
		if err != nil {
			b.Fatal(err)
		}
		idx := t.Col("p99 ms")
		for _, r := range t.Rows {
			switch r.X {
			case "baseline":
				b.ReportMetric(r.Values[idx], "baseline-p99-ms")
			case "drive-kill":
				b.ReportMetric(r.Values[idx], "kill-p99-ms")
			}
		}
		if err := bench.WriteBenchChaosJSON("BENCH_chaos.json", t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigEC regenerates the erasure-coding figure: streamed
// large objects on replication-3 vs Reed-Solomon 4+2, reporting raw
// capacity per logical byte and GET throughput for both classes, plus
// a timed shard rebuild after a drive kill under a closed-loop write
// load. Emits BENCH_ec.json, which the CI ec-smoke job uploads as an
// artifact.
func BenchmarkFigEC(b *testing.B) {
	s := microScale()
	for i := 0; i < b.N; i++ {
		t, err := bench.FigEC(s)
		if err != nil {
			b.Fatal(err)
		}
		tl := bench.LastECTimeline()
		b.ReportMetric(tl.CapacityRepl, "repl-raw-per-byte")
		b.ReportMetric(tl.CapacityEC, "ec-raw-per-byte")
		b.ReportMetric(tl.GetRatio, "ec-get-ratio")
		b.ReportMetric(tl.RebuildMs, "rebuild-ms")
		if err := bench.WriteBenchECJSON("BENCH_ec.json", t); err != nil {
			b.Fatal(err)
		}
		if tl.CapacityEC > 1.6 {
			b.Fatalf("EC raw/logical %.2fx exceeds 1.6x at %d+%d", tl.CapacityEC, tl.K, tl.M)
		}
		if tl.GetRatio < 0.9 {
			b.Fatalf("EC GET at %.2fx of the replicated baseline (< 0.9x)", tl.GetRatio)
		}
		if tl.LostAcked > 0 {
			b.Fatalf("%d of %d acked writes lost during the rebuild phase", tl.LostAcked, tl.AckedWrites)
		}
	}
}

// BenchmarkFigObs measures the healthy-path overhead of the full
// observability layer (tracing + metrics + audit sampling) against
// the kill switch on identical YCSB-A replays, and emits
// BENCH_obs.json, which the CI obs-smoke job uploads as an artifact.
func BenchmarkFigObs(b *testing.B) {
	s := microScale()
	// Longer rounds than the other micro figures: the quantity under
	// test is a small throughput delta, and sub-second replay windows
	// let one scheduler hiccup swamp a round's ratio.
	s.RecordCount = 1000
	s.OpCount = 8000
	for i := 0; i < b.N; i++ {
		t, err := bench.FigObs(s)
		if err != nil {
			b.Fatal(err)
		}
		reportPeak(b, t, "Obs On kIOP/s", "obs-on-kIOPS")
		reportPeak(b, t, "Obs Off kIOP/s", "obs-off-kIOPS")
		idx := t.Col("Overhead %")
		b.ReportMetric(t.Rows[len(t.Rows)-1].Values[idx], "overhead-pct")
		if err := bench.WriteBenchObsJSON("BENCH_obs.json", t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchWireGrouped measures the per-logical-write cost of
// assembling and encoding merged grouped TBatch frames with the
// pooled sub-operation scratch — run with -benchmem; the allocs/op
// floor is asserted by TestBatchWritePathAllocs so a pooling
// regression fails the suite, not just the bench report.
func BenchmarkBatchWireGrouped(b *testing.B) {
	key := []byte("bench-secret-key")
	enc := wire.NewEncoder()
	value := make([]byte, 1024)
	okey, mkey, ver := []byte("o/k/1"), []byte("m/k"), []byte{1}
	ops := make([]wire.BatchOp, 0, 32)
	sizes := make([]uint32, 16)
	for i := range sizes {
		sizes[i] = 2
	}
	m := &wire.Message{Type: wire.TBatch, User: "pesos-admin"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops = ops[:0]
		for g := 0; g < 16; g++ {
			ops = append(ops,
				wire.BatchOp{Op: wire.BatchPut, Key: okey, Value: value, NewVersion: ver, Force: true},
				wire.BatchOp{Op: wire.BatchPut, Key: mkey, Value: value[:96], NewVersion: ver})
		}
		m.Seq, m.Batch, m.GroupSizes = uint64(i), ops, sizes
		if err := enc.WriteFrame(io.Discard, m, key); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBatchWritePathAllocs asserts the batch write path's wire
// assembly stays allocation-flat: encoding a merged 16-group batch
// into a reused encoder and sub-operation scratch must not allocate
// per sub-operation (the op-slice and marshal-buffer pooling the
// group committer relies on).
func TestBatchWritePathAllocs(t *testing.T) {
	key := []byte("bench-secret-key")
	enc := wire.NewEncoder()
	value := make([]byte, 1024)
	okey, mkey, ver := []byte("o/k/1"), []byte("m/k"), []byte{1}
	ops := make([]wire.BatchOp, 0, 32)
	sizes := make([]uint32, 16)
	for i := range sizes {
		sizes[i] = 2
	}
	m := &wire.Message{Type: wire.TBatch, User: "pesos-admin"}
	seq := uint64(0)
	avg := testing.AllocsPerRun(200, func() {
		ops = ops[:0]
		for g := 0; g < 16; g++ {
			ops = append(ops,
				wire.BatchOp{Op: wire.BatchPut, Key: okey, Value: value, NewVersion: ver, Force: true},
				wire.BatchOp{Op: wire.BatchPut, Key: mkey, Value: value[:96], NewVersion: ver})
		}
		seq++
		m.Seq, m.Batch, m.GroupSizes = seq, ops, sizes
		if err := enc.WriteFrame(io.Discard, m, key); err != nil {
			t.Fatal(err)
		}
	})
	// A 32-sub-op frame reuses the encoder's buffer and HMAC state;
	// nothing on the path may allocate per sub-op.
	if avg > 2 {
		t.Fatalf("merged batch encode allocates %.1f/frame; pooling regressed", avg)
	}
}

// BenchmarkFigHedgedReads regenerates the hedged-read comparison
// (all-replica fan-out vs latency-aware primary-first hedging on a
// cache-hostile read-only workload).
func BenchmarkFigHedgedReads(b *testing.B) {
	s := microScale()
	for i := 0; i < b.N; i++ {
		t, err := bench.FigHedgedReads(s)
		if err != nil {
			b.Fatal(err)
		}
		idx := t.Col("Hedged gets/read")
		fidx := t.Col("Fanout gets/read")
		b.ReportMetric(t.Rows[0].Values[idx], "hedged-gets-per-read")
		b.ReportMetric(t.Rows[0].Values[fidx], "fanout-gets-per-read")
	}
}
