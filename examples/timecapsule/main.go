// Time capsule (§5.2): an object that nobody can read until a release
// date, enforced with certified time from a time authority chained to
// a root CA. Demonstrates certificateSays with a chain of trust and
// freshness windows.
//
// Run with: go run ./examples/timecapsule
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/authority"
	"repro/internal/client"
	"repro/internal/testbed"
	"repro/internal/usecases"
)

func main() {
	// A controllable trusted clock stands in for the SGX trusted time
	// source so the example can "wait" for the release date instantly.
	clock := &fakeClock{now: time.Date(2026, 6, 1, 12, 0, 0, 0, time.UTC)}

	cluster, err := testbed.Start(testbed.Options{Drives: 1, Enclave: true, Clock: clock.Now})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()

	// The root authority delegates time signing to a time server
	// (certificate chain: rootCA says ts(tsKey); tsKey says time(t)).
	rootCA, err := authority.New("root-ca")
	if err != nil {
		log.Fatal(err)
	}
	timeServer, err := authority.New("time-server")
	if err != nil {
		log.Fatal(err)
	}
	delegation, err := rootCA.Sign(
		authority.DelegationFact("ts", timeServer.KeyValue()),
		clock.Now(), [32]byte{})
	if err != nil {
		log.Fatal(err)
	}

	owner, ownerID, err := cluster.NewClient("owner")
	if err != nil {
		log.Fatal(err)
	}

	release := time.Date(2026, 6, 15, 0, 0, 0, 0, time.UTC)
	policySrc := usecases.TimeCapsule(rootCA.Fingerprint(), release.Unix(), 300, testbed.Fingerprint(ownerID))
	fmt.Printf("time-capsule policy:\n%s\n", policySrc)
	pid, err := owner.PutPolicy(ctx, policySrc)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := owner.Put(ctx, "capsule", []byte("the secret plans"), client.PutOptions{PolicyID: pid}); err != nil {
		log.Fatal(err)
	}

	// timeCert fetches a fresh signed time statement, like querying a
	// real time server.
	timeCert := func() *authority.Certificate {
		c, err := timeServer.Sign(authority.TimeFact(clock.Now()), clock.Now(), [32]byte{})
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	// Before the release date: denied, even with valid certificates.
	_, _, err = owner.Get(ctx, "capsule", client.GetOptions{
		Certs: []*authority.Certificate{delegation, timeCert()},
	})
	fmt.Printf("read on %s: %v\n", clock.Now().Format("2006-01-02"), err)

	// A stale certificate from after the release date also fails the
	// freshness window: forge-by-waiting does not work.
	clock.Advance(20 * 24 * time.Hour) // now past release
	staleCert := timeCert()
	clock.Advance(time.Hour) // certificate is now an hour old, window is 300 s
	_, _, err = owner.Get(ctx, "capsule", client.GetOptions{
		Certs: []*authority.Certificate{delegation, staleCert},
	})
	fmt.Printf("read with stale time certificate: %v\n", err)

	// Fresh certificate after release: granted.
	val, _, err := owner.Get(ctx, "capsule", client.GetOptions{
		Certs: []*authority.Certificate{delegation, timeCert()},
	})
	if err != nil {
		log.Fatalf("read after release should pass: %v", err)
	}
	fmt.Printf("read on %s: %q\n", clock.Now().Format("2006-01-02"), val)

	// A certificate signed by an undelegated key is rejected.
	rogue, _ := authority.New("rogue-time")
	rogueCert, _ := rogue.Sign(authority.TimeFact(clock.Now()), clock.Now(), [32]byte{})
	_, _, err = owner.Get(ctx, "capsule", client.GetOptions{
		Certs: []*authority.Certificate{rogueCert},
	})
	fmt.Printf("read with undelegated time server: %v\n", err)
}

type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}
