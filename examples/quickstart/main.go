// Quickstart: boot a complete Pesos deployment in-process (two
// Kinetic drives, attestation service, enclave controller, REST over
// mutual TLS), store an object under an access-control policy, read
// it back, and verify the stored integrity evidence.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/client"
	"repro/internal/testbed"
	"repro/internal/usecases"
)

func main() {
	// Start the deployment: drives, attestation, controller. Enclave
	// mode means the controller passes remote attestation before it
	// receives its TLS identity, drive credentials and object
	// encryption key.
	cluster, err := testbed.Start(testbed.Options{Drives: 2, Replicas: 2, Enclave: true})
	if err != nil {
		log.Fatalf("start cluster: %v", err)
	}
	defer cluster.Close()
	fmt.Printf("controller attested, measurement %s\n", cluster.Enclave.Measurement())
	fmt.Printf("drives after takeover: %v accounts on drive 0 (pesos-admin only)\n",
		cluster.Drives[0].Accounts())

	// Each client is identified by its TLS certificate.
	alice, aliceID, err := cluster.NewClient("alice")
	if err != nil {
		log.Fatal(err)
	}
	bob, bobID, err := cluster.NewClient("bob")
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// A per-object policy: alice and bob may read, only alice updates,
	// only alice deletes (§5.1 content server).
	src := usecases.ContentServer(
		[]string{testbed.Fingerprint(aliceID), testbed.Fingerprint(bobID)}, // readers
		[]string{testbed.Fingerprint(aliceID)},                             // writers
		[]string{testbed.Fingerprint(aliceID)},                             // deleters
	)
	policyID, err := alice.PutPolicy(ctx, src)
	if err != nil {
		log.Fatalf("compile policy: %v", err)
	}
	fmt.Printf("policy compiled and stored, id %s...\n", policyID[:16])

	// Store an object with the policy attached.
	if _, err := alice.Put(ctx, "greeting", []byte("hello, secure world"), client.PutOptions{PolicyID: policyID}); err != nil {
		log.Fatalf("put: %v", err)
	}

	// Both principals can read.
	val, meta, err := bob.Get(ctx, "greeting", client.GetOptions{})
	if err != nil {
		log.Fatalf("bob get: %v", err)
	}
	fmt.Printf("bob read %q (version %d)\n", val, meta.Version)

	// Bob cannot update: the controller's policy interpreter denies it.
	if _, err := bob.Put(ctx, "greeting", []byte("overwritten!"), client.PutOptions{}); err != nil {
		fmt.Printf("bob update denied as expected: %v\n", err)
	} else {
		log.Fatal("bob update unexpectedly allowed")
	}

	// Verify the stored object: content hash and policy hash as
	// recorded in the trusted layer.
	info, err := alice.Verify(ctx, "greeting", 0)
	if err != nil {
		log.Fatalf("verify: %v", err)
	}
	fmt.Printf("verified: size=%d contentHash=%s... policyHash=%s...\n",
		info.Size, info.ContentHash[:16], info.PolicyHash[:16])

	// Audit what the policy id actually enforces.
	text, err := alice.GetPolicy(ctx, policyID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("canonical policy text:\n%s", text)
}
