// Transactions (§4.4): atomic multi-object updates with the VLL lock
// manager — a transfer between two accounts with concurrent
// contention, plus read-your-locks semantics via checkResults.
//
// Run with: go run ./examples/transactions
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"
	"sync"

	"repro/internal/client"
	"repro/internal/testbed"
)

func main() {
	cluster, err := testbed.Start(testbed.Options{Drives: 1, Enclave: true})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()

	cl, _, err := cluster.NewClient("bank")
	if err != nil {
		log.Fatal(err)
	}

	// Seed two accounts.
	for k, v := range map[string]string{"acct/alice": "100", "acct/bob": "100"} {
		if _, err := cl.Put(ctx, k, []byte(v), client.PutOptions{}); err != nil {
			log.Fatal(err)
		}
	}

	// transfer moves amount between accounts atomically: read both,
	// write both, all inside one VLL-locked transaction.
	transfer := func(from, to string, amount int) error {
		tx, err := cl.CreateTx(ctx)
		if err != nil {
			return err
		}
		balFrom, _, err := cl.Get(ctx, from, client.GetOptions{})
		if err != nil {
			return err
		}
		balTo, _, err := cl.Get(ctx, to, client.GetOptions{})
		if err != nil {
			return err
		}
		f, _ := strconv.Atoi(string(balFrom))
		t, _ := strconv.Atoi(string(balTo))
		if err := tx.AddWrite(ctx, from, []byte(strconv.Itoa(f-amount))); err != nil {
			return err
		}
		if err := tx.AddWrite(ctx, to, []byte(strconv.Itoa(t+amount))); err != nil {
			return err
		}
		if err := tx.Commit(ctx); err != nil {
			return err
		}
		results, err := tx.Results(ctx)
		if err != nil {
			return err
		}
		for _, r := range results {
			fmt.Printf("  tx %d: %s %s -> v%d\n", tx.ID(), r.Op, r.Key, r.Version)
		}
		return nil
	}

	fmt.Println("transfer 30 alice -> bob:")
	if err := transfer("acct/alice", "acct/bob", 30); err != nil {
		log.Fatal(err)
	}

	// Concurrent transfers on overlapping accounts serialize through
	// the VLL queue rather than corrupting balances.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tx, err := cl.CreateTx(ctx)
			if err != nil {
				log.Print(err)
				return
			}
			if err := tx.AddWrite(ctx, "acct/counter", []byte(fmt.Sprint(i))); err != nil {
				log.Print(err)
				return
			}
			if err := tx.Commit(ctx); err != nil {
				log.Print(err)
			}
		}(i)
	}
	wg.Wait()

	versions, err := cl.ListVersions(ctx, "acct/counter")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4 concurrent transactions serialized into versions %v\n", versions)

	a, _, _ := cl.Get(ctx, "acct/alice", client.GetOptions{})
	b, _, _ := cl.Get(ctx, "acct/bob", client.GetOptions{})
	fmt.Printf("final balances: alice=%s bob=%s (sum preserved)\n", a, b)

	// Aborted transactions leave no trace.
	tx, err := cl.CreateTx(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.AddWrite(ctx, "acct/alice", []byte("999999")); err != nil {
		log.Fatal(err)
	}
	if err := tx.Abort(ctx); err != nil {
		log.Fatal(err)
	}
	a2, _, _ := cl.Get(ctx, "acct/alice", client.GetOptions{})
	fmt.Printf("after aborted tx, alice=%s (unchanged)\n", a2)
}
