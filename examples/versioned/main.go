// Versioned store (§5.3): every update must carry the exact next
// version index, so the full history of an object is preserved and
// can be audited after a corruption. Demonstrates the nextVersion /
// currVersion policy predicates and history reads.
//
// Run with: go run ./examples/versioned
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/client"
	"repro/internal/testbed"
	"repro/internal/usecases"
)

func main() {
	cluster, err := testbed.Start(testbed.Options{Drives: 1, Enclave: true})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()

	cl, _, err := cluster.NewClient("editor")
	if err != nil {
		log.Fatal(err)
	}

	pid, err := cl.PutPolicy(ctx, usecases.Versioned())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("versioned-store policy:\n%s\n", usecases.Versioned())

	// Creation must use version 0 (the policy's creation exception).
	if _, err := cl.Put(ctx, "config", []byte(`timeout=10`), client.PutOptions{
		PolicyID: pid, Version: 0, HasVersion: true,
	}); err != nil {
		log.Fatal(err)
	}

	// Each update supplies current+1.
	for i, content := range []string{`timeout=20`, `timeout=30`, `timeout=30 retries=5 # corrupted!`} {
		if _, err := cl.Put(ctx, "config", []byte(content), client.PutOptions{
			Version: int64(i + 1), HasVersion: true,
		}); err != nil {
			log.Fatal(err)
		}
	}

	// A stale or repeated version number is rejected by the policy —
	// lost-update protection.
	_, err = cl.Put(ctx, "config", []byte("overwrite"), client.PutOptions{Version: 2, HasVersion: true})
	fmt.Printf("update with stale version 2: %v\n", err)

	// The history is fully preserved; walk it to find when the
	// corruption appeared.
	versions, err := cl.ListVersions(ctx, "config")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored versions: %v\n", versions)
	for _, v := range versions {
		val, _, err := cl.Get(ctx, "config", client.GetOptions{Version: v, HasVersion: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  v%d: %s\n", v, val)
	}

	// Integrity evidence per version.
	for _, v := range versions {
		info, err := cl.Verify(ctx, "config", v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  v%d contentHash=%s...\n", v, info.ContentHash[:12])
	}
	fmt.Println("corruption introduced in v3; restore by writing v4 with v2's content")
	v2, _, err := cl.Get(ctx, "config", client.GetOptions{Version: 2, HasVersion: true})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cl.Put(ctx, "config", v2, client.PutOptions{Version: 4, HasVersion: true}); err != nil {
		log.Fatal(err)
	}
	cur, meta, err := cl.Get(ctx, "config", client.GetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored: v%d = %s\n", meta.Version, cur)
}
