// Content server (§5.1): a multi-tenant object store serving content
// under per-object access control lists, with a third-party group
// authority granting access by certified group membership — the
// policy-language integration of external services the paper
// describes in §3.1.
//
// Run with: go run ./examples/contentserver
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/authority"
	"repro/internal/client"
	"repro/internal/policy/value"
	"repro/internal/testbed"
	"repro/internal/usecases"
)

func main() {
	cluster, err := testbed.Start(testbed.Options{Drives: 2, Replicas: 2, Enclave: true})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()

	// Three tenants and an administrator.
	alice, aliceID, _ := cluster.NewClient("alice")
	bob, bobID, _ := cluster.NewClient("bob")
	carol, carolID, _ := cluster.NewClient("carol")
	admin, adminID, _ := cluster.NewClient("admin")
	fp := testbed.Fingerprint

	// Plain ACL: alice+bob read, alice writes, admin deletes.
	acl := usecases.ContentServer(
		[]string{fp(aliceID), fp(bobID)},
		[]string{fp(aliceID)},
		[]string{fp(adminID)},
	)
	aclID, err := alice.PutPolicy(ctx, acl)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := alice.Put(ctx, "site/index.html", []byte("<h1>hello</h1>"), client.PutOptions{PolicyID: aclID}); err != nil {
		log.Fatal(err)
	}

	check := func(who string, cl *client.Client, certs ...*authority.Certificate) {
		_, _, err := cl.Get(ctx, "site/index.html", client.GetOptions{Certs: certs})
		fmt.Printf("  %-6s read: %v\n", who, errOrOK(err))
	}
	fmt.Println("ACL policy:")
	check("alice", alice)
	check("bob", bob)
	check("carol", carol)

	// Group-based access: a group authority certifies membership, and
	// the policy admits any client presenting a fresh membership
	// certificate — no policy change needed when the group grows.
	groups, err := authority.New("group-authority")
	if err != nil {
		log.Fatal(err)
	}
	groupPolicy := fmt.Sprintf(
		"read :- sessionKeyIs(U) and certificateSays(k'%s', 600, 'member'('staff', U))\n"+
			"update :- sessionKeyIs(k'%s')\n",
		groups.Fingerprint(), fp(aliceID))
	groupID, err := alice.PutPolicy(ctx, groupPolicy)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := alice.Put(ctx, "site/internal.html", []byte("staff only"), client.PutOptions{PolicyID: groupID}); err != nil {
		log.Fatal(err)
	}

	// The authority issues carol a staff membership certificate:
	// member('staff', k'<carol>').
	membership := func(member string) *authority.Certificate {
		fact := value.Tup("member", value.Str("staff"), value.PubKey(member))
		c, err := groups.Sign(fact, time.Now(), [32]byte{})
		if err != nil {
			log.Fatal(err)
		}
		return c
	}
	fmt.Println("group policy (staff members only):")
	_, _, err = carol.Get(ctx, "site/internal.html", client.GetOptions{})
	fmt.Printf("  carol without certificate: %v\n", errOrOK(err))
	_, _, err = carol.Get(ctx, "site/internal.html", client.GetOptions{
		Certs: []*authority.Certificate{membership(fp(carolID))},
	})
	fmt.Printf("  carol with membership:     %v\n", errOrOK(err))
	// A certificate naming someone else does not help bob.
	_, _, err = bob.Get(ctx, "site/internal.html", client.GetOptions{
		Certs: []*authority.Certificate{membership(fp(carolID))},
	})
	fmt.Printf("  bob with carol's cert:     %v\n", errOrOK(err))

	// Only the admin may delete ACL'd content.
	if _, err := bob.Delete(ctx, "site/index.html", false); err == nil {
		log.Fatal("bob deleted protected content")
	}
	if _, err := admin.Delete(ctx, "site/index.html", false); err != nil {
		log.Fatalf("admin delete: %v", err)
	}
	fmt.Println("admin deleted site/index.html; bob could not")
}

func errOrOK(err error) string {
	if err == nil {
		return "OK"
	}
	return err.Error()
}
