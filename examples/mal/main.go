// Mandatory access logging (§5.4): every access to a protected object
// requires a matching intent entry in its paired append-only log, so
// the log is a complete, policy-enforced audit trail. Demonstrates
// the objSays predicate reasoning over object content.
//
// Run with: go run ./examples/mal
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/testbed"
	"repro/internal/usecases"
)

func main() {
	cluster, err := testbed.Start(testbed.Options{Drives: 1, Enclave: true})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()

	cl, id, err := cluster.NewClient("auditor")
	if err != nil {
		log.Fatal(err)
	}
	me := testbed.Fingerprint(id)

	malID, err := cl.PutPolicy(ctx, usecases.MAL())
	if err != nil {
		log.Fatal(err)
	}
	verID, err := cl.PutPolicy(ctx, usecases.Versioned())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MAL policy:\n%s\n", usecases.MAL())

	const key = "medical-record"
	logKey := core.LogKeyFor(key)

	// The paired log is an ordinary object under the versioned policy:
	// append-only by construction.
	appendLog := func(entry string, version int64) {
		if opts := (client.PutOptions{Version: version, HasVersion: true}); version == 0 {
			opts.PolicyID = verID
			_, err = cl.Put(ctx, logKey, []byte(entry), opts)
		} else {
			_, err = cl.Put(ctx, logKey, []byte(entry), client.PutOptions{Version: version, HasVersion: true})
		}
		if err != nil {
			log.Fatalf("append log: %v", err)
		}
	}

	// Create the MAL-protected object (creation is exempt, version 0).
	appendLog(usecases.WriteIntent(key, me), 0)
	if _, err := cl.Put(ctx, key, []byte("blood type: 0+"), client.PutOptions{
		PolicyID: malID, Version: 0, HasVersion: true,
	}); err != nil {
		log.Fatal(err)
	}

	// Reading without a logged read intent is denied: the latest log
	// entry is a write intent.
	if _, _, err := cl.Get(ctx, key, client.GetOptions{}); err != nil {
		fmt.Printf("unlogged read denied: %v\n", err)
	} else {
		log.Fatal("unlogged read unexpectedly allowed")
	}

	// Log the intent, then read.
	appendLog(usecases.ReadIntent(key, me), 1)
	val, _, err := cl.Get(ctx, key, client.GetOptions{})
	if err != nil {
		log.Fatalf("logged read should pass: %v", err)
	}
	fmt.Printf("logged read succeeded: %q\n", val)

	// Updates likewise require a write intent.
	if _, err := cl.Put(ctx, key, []byte("blood type: AB-"), client.PutOptions{Version: 1, HasVersion: true}); err != nil {
		fmt.Printf("unlogged write denied: %v\n", err)
	}
	appendLog(usecases.WriteIntent(key, me), 2)
	if _, err := cl.Put(ctx, key, []byte("blood type: AB-"), client.PutOptions{Version: 1, HasVersion: true}); err != nil {
		log.Fatalf("logged write should pass: %v", err)
	}

	// The log object now holds the complete audit trail, version by
	// version, itself protected against rewriting by its policy.
	versions, err := cl.ListVersions(ctx, logKey)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("audit trail:")
	for _, v := range versions {
		entry, _, err := cl.Get(ctx, logKey, client.GetOptions{Version: v, HasVersion: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  log[%d] = %s\n", v, entry)
	}
}
